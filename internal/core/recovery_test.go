package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"hypertp/internal/fault"
	"hypertp/internal/hterr"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/migration"
	"hypertp/internal/obs"
	"hypertp/internal/par"
	rpt "hypertp/internal/report"
	"hypertp/internal/simnet"
	"hypertp/internal/simtime"
)

// bootSmallVMs boots a hypervisor with n small (64 MiB) VMs: the matrix
// sweeps 20 transplants — and runs under -race in `make fault-matrix` —
// so what matters is the recovery state machine, not the copy volume.
func bootSmallVMs(t *testing.T, b *bench, kind hv.Kind, n int) hv.Hypervisor {
	t.Helper()
	h, err := b.engine.BootHypervisor(kind)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		vm, err := h.CreateVM(hv.Config{
			Name: vmName(i), VCPUs: 1, MemBytes: 64 << 20,
			HugePages: true, Seed: uint64(1000 + i), InPlaceCompatible: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.Guest.WriteWorkingSet(0, 64); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

// checksumVMs captures every VM's full-space checksum keyed by name.
func checksumVMs(t *testing.T, vms []*hv.VM) map[string]uint64 {
	t.Helper()
	sums := make(map[string]uint64, len(vms))
	for _, vm := range vms {
		sum, err := vm.Space.ChecksumAll()
		if err != nil {
			t.Fatal(err)
		}
		sums[vm.Config.Name] = sum
	}
	return sums
}

// spanNames flattens a recorder's span forest into name → count.
func spanNames(rec *obs.Recorder) map[string]int {
	names := map[string]int{}
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		names[s.Name]++
		for _, k := range s.Children() {
			walk(k)
		}
	}
	for _, r := range rec.Roots() {
		walk(r)
	}
	return names
}

// TestRecoveryMatrix is the paper's safety claim, mechanized: for every
// registered injection site, a fault forced at its first occurrence must
// end in either a verified full rollback (source checksums unchanged,
// nothing paused) or a verified full completion (target checksums match),
// never a half-state — for both transplant mechanisms. The recovery path
// must also be visible in the span tree.
func TestRecoveryMatrix(t *testing.T) {
	inplaceWant := map[fault.Site]rpt.Outcome{
		// Before releaseVMState the engine can still roll back.
		fault.SiteKexecLoad:     rpt.OutcomeRolledBack,
		fault.SitePRAMBuild:     rpt.OutcomeRolledBack,
		fault.SiteUISRTranslate: rpt.OutcomeRolledBack,
		// Past the point of no return, recovery goes forward via PRAM.
		fault.SiteKexecHandover: rpt.OutcomeRecovered,
		fault.SiteHVBoot:        rpt.OutcomeRecovered,
		fault.SitePRAMParse:     rpt.OutcomeRecovered,
		fault.SiteUISRRestore:   rpt.OutcomeRecovered,
		// Never armed by InPlaceTP: the plan stays quiet.
		fault.SiteLinkAbort:   rpt.OutcomeCompleted,
		fault.SiteLinkLoss:    rpt.OutcomeCompleted,
		fault.SiteClusterHost: rpt.OutcomeCompleted,
		// Armed only on a cache hit; without a primed cache the plan
		// stays quiet. TestCacheStalePoisonFallback covers the armed
		// case.
		fault.SiteCacheStale: rpt.OutcomeCompleted,
		// A double fault — the source hypervisor dying mid-transplant —
		// can neither roll back nor complete: the transplant is
		// abandoned with the VMs frozen in place and the emergency path
		// finishes the job (verified below).
		fault.SiteHVCrashDuringTP: rpt.OutcomeCrashed,
		// Spontaneous crash/hang sites are armed by the reactive layer
		// (detector/chaos), never by a planned InPlaceTP.
		fault.SiteHVCrash: rpt.OutcomeCompleted,
		fault.SiteHVHang:  rpt.OutcomeCompleted,
	}
	for _, site := range fault.Sites() {
		site := site
		t.Run("inplace/"+string(site), func(t *testing.T) {
			want, ok := inplaceWant[site]
			if !ok {
				t.Fatalf("site %s missing from matrix expectations", site)
			}
			b := newBench(t, hw.M1())
			rec := obs.NewRecorder(b.clock)
			b.engine.Obs = rec
			src := bootSmallVMs(t, b, hv.KindXen, 2)
			pre := checksumVMs(t, src.VMs())
			b.engine.Fault = fault.NewPlan(1, 0).ForceAt(site, 1).
				SetClock(b.clock).SetRecorder(rec)

			dst, rep, err := b.engine.InPlace(src, hv.KindKVM, DefaultOptions())
			switch want {
			case rpt.OutcomeCrashed:
				if !errors.Is(err, hterr.ErrHypervisorCrashed) || !errors.Is(err, hterr.ErrInjected) {
					t.Fatalf("err = %v, want crash+injected", err)
				}
				if dst != nil {
					t.Fatal("crash abandon produced a target hypervisor")
				}
				if rep == nil || rep.Outcome != rpt.OutcomeCrashed {
					t.Fatalf("report = %+v", rep)
				}
				c, ok := src.(hv.Crashable)
				if !ok || !c.Crashed() {
					t.Fatal("source not marked crashed after double fault")
				}
				if len(src.VMs()) != 2 {
					t.Fatalf("%d VMs on source after crash, want 2 frozen", len(src.VMs()))
				}
				for _, vm := range src.VMs() {
					if !vm.Paused() {
						t.Fatalf("VM %q running on a crashed hypervisor", vm.Config.Name)
					}
				}
				if got := checksumVMs(t, src.VMs()); !reflect.DeepEqual(got, pre) {
					t.Fatal("guest memory changed across the crash")
				}
				if spanNames(rec)["crash-abandon"] == 0 {
					t.Fatal("no crash-abandon span recorded")
				}
				// The emergency path must finish what the double fault
				// interrupted: salvage the frozen state and land every VM
				// on the other hypervisor, checksums intact.
				edst, erep, err := b.engine.Emergency(src, hv.KindKVM, DefaultOptions())
				if err != nil {
					t.Fatalf("emergency after double fault: %v", err)
				}
				if erep.Outcome != rpt.OutcomeRecovered || !erep.Emergency {
					t.Fatalf("emergency report = %+v", erep)
				}
				if len(edst.VMs()) != 2 {
					t.Fatalf("%d VMs after emergency, want 2", len(edst.VMs()))
				}
				for _, vm := range edst.VMs() {
					if vm.Paused() {
						t.Fatalf("VM %q left paused after emergency", vm.Config.Name)
					}
				}
				if got := checksumVMs(t, edst.VMs()); !reflect.DeepEqual(got, pre) {
					t.Fatal("checksums do not survive the emergency transplant")
				}
			case rpt.OutcomeRolledBack:
				if !errors.Is(err, hterr.ErrAborted) || !errors.Is(err, hterr.ErrInjected) {
					t.Fatalf("err = %v, want aborted+injected", err)
				}
				if dst != nil {
					t.Fatal("rollback produced a target hypervisor")
				}
				if rep == nil || rep.Outcome != rpt.OutcomeRolledBack {
					t.Fatalf("report = %+v", rep)
				}
				if len(src.VMs()) != 2 {
					t.Fatalf("%d VMs on source after rollback, want 2", len(src.VMs()))
				}
				for _, vm := range src.VMs() {
					if vm.Paused() {
						t.Fatalf("VM %q left paused after rollback", vm.Config.Name)
					}
				}
				if got := checksumVMs(t, src.VMs()); !reflect.DeepEqual(got, pre) {
					t.Fatal("source checksums changed across rollback")
				}
				if spanNames(rec)["rollback"] == 0 {
					t.Fatal("no rollback span recorded")
				}
			default:
				if err != nil {
					t.Fatal(err)
				}
				if rep.Outcome != want {
					t.Fatalf("outcome = %s, want %s", rep.Outcome, want)
				}
				if len(dst.VMs()) != 2 {
					t.Fatalf("%d VMs on target, want 2", len(dst.VMs()))
				}
				for _, vm := range dst.VMs() {
					if vm.Paused() {
						t.Fatalf("VM %q left paused on target", vm.Config.Name)
					}
				}
				if got := checksumVMs(t, dst.VMs()); !reflect.DeepEqual(got, pre) {
					t.Fatal("target checksums do not match the source")
				}
				if want == rpt.OutcomeRecovered {
					if rep.Faults < 1 || rep.Attempts < 2 {
						t.Fatalf("faults = %d attempts = %d after recovery", rep.Faults, rep.Attempts)
					}
					if spanNames(rec)["recovery:"+string(site)] == 0 {
						t.Fatalf("no recovery:%s span recorded", site)
					}
				}
			}
		})
	}

	for _, site := range fault.Sites() {
		site := site
		t.Run("migration/"+string(site), func(t *testing.T) {
			clock := simtime.NewClock()
			srcE := NewEngine(clock, hw.NewMachine(clock, hw.M1()))
			src, err := srcE.BootHypervisor(hv.KindXen)
			if err != nil {
				t.Fatal(err)
			}
			vm, err := src.CreateVM(hv.Config{
				Name: "mx", VCPUs: 1, MemBytes: 64 << 20, HugePages: true,
				Seed: 9, InPlaceCompatible: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := vm.Guest.WriteWorkingSet(0, 64); err != nil {
				t.Fatal(err)
			}
			pre, err := vm.Space.ChecksumAll()
			if err != nil {
				t.Fatal(err)
			}
			dstE := NewEngine(clock, hw.NewMachine(clock, hw.M1()))
			dst, err := dstE.BootHypervisor(hv.KindKVM)
			if err != nil {
				t.Fatal(err)
			}
			link := simnet.NewLink(clock, "pair", simnet.Gbps1, 100*time.Microsecond)
			rec := obs.NewRecorder(clock)
			plan := fault.NewPlan(1, 0).ForceAt(site, 1).SetClock(clock).SetRecorder(rec)

			rep, err := MigrationTP(clock, MigrationTPParams{
				Link: link, Source: src, Dest: migration.NewReceiver(clock, dst, 1),
				VMID: vm.ID, Obs: rec, Fault: plan, Retry: fault.DefaultRetryPolicy(),
			})
			// A single forced shot is always recoverable under the
			// default policy: full completion, never a half-state.
			if err != nil {
				t.Fatal(err)
			}
			if len(dst.VMs()) != 1 || len(src.VMs()) != 0 {
				t.Fatalf("half-state: %d VMs on dest, %d on source", len(dst.VMs()), len(src.VMs()))
			}
			sum, err := dst.VMs()[0].Space.ChecksumAll()
			if err != nil {
				t.Fatal(err)
			}
			if sum != pre {
				t.Fatal("dest checksum does not match pre-migration source")
			}
			switch site {
			case fault.SiteLinkAbort:
				if rep.Outcome != rpt.OutcomeRecovered || rep.Attempts != 2 {
					t.Fatalf("outcome = %s attempts = %d, want recovered/2", rep.Outcome, rep.Attempts)
				}
				if spanNames(rec)["rollback"] == 0 {
					t.Fatal("no rollback span between attempts")
				}
			case fault.SiteLinkLoss:
				// Lossy, not severed: one (slower) attempt completes.
				if rep.Attempts != 1 || len(plan.Shots()) != 1 {
					t.Fatalf("attempts = %d shots = %v", rep.Attempts, plan.Shots())
				}
			default:
				if rep.Outcome != rpt.OutcomeCompleted {
					t.Fatalf("outcome = %s, want completed", rep.Outcome)
				}
				if len(plan.Shots()) != 0 {
					t.Fatalf("site %s unexpectedly fired during migration: %v", site, plan.Shots())
				}
			}
		})
	}
}

// TestFaultDeterminismAcrossWorkers: the same fault seed must yield
// byte-identical reports and shot lists regardless of the -workers
// count — faults are armed only from single-threaded simulation code,
// so host scheduling must not leak into what fires or when.
func TestFaultDeterminismAcrossWorkers(t *testing.T) {
	defer par.SetWorkers(0)
	type run struct {
		report string
		shots  string
	}
	grab := func(workers int) run {
		par.SetWorkers(workers)
		b := newBench(t, hw.M1())
		clock, e := b.clock, b.engine
		src := bootSmallVMs(t, b, hv.KindXen, 4)
		plan := fault.NewPlan(9, 0).
			ForceAt(fault.SiteKexecHandover, 1).
			ForceAt(fault.SiteUISRRestore, 2).
			SetClock(clock)
		e.Fault = plan
		_, rep, err := e.InPlace(src, hv.KindKVM, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return run{fmt.Sprintf("%+v", *rep), fmt.Sprintf("%v", plan.Shots())}
	}
	one := grab(1)
	eight := grab(8)
	if one.report != eight.report {
		t.Fatalf("reports differ between -workers 1 and 8:\n%s\nvs\n%s", one.report, eight.report)
	}
	if one.shots != eight.shots {
		t.Fatalf("fired shots differ between -workers 1 and 8:\n%s\nvs\n%s", one.shots, eight.shots)
	}
	again := grab(8)
	if eight.report != again.report || eight.shots != again.shots {
		t.Fatal("identical wide runs differ")
	}
}
