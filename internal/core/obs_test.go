package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/obs"
	"hypertp/internal/par"
	"hypertp/internal/simtime"
	"hypertp/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// tracedInPlace runs the canonical Fig. 7 single-VM transplant (M1,
// Xen→KVM, 1 vCPU / 1 GiB) with a recorder attached and returns the
// recorder plus the engine report.
func tracedInPlace(t *testing.T) (*obs.Recorder, *InPlaceReport) {
	t.Helper()
	clock := simtime.NewClock()
	m := hw.NewMachine(clock, hw.M1())
	engine := NewEngine(clock, m)
	rec := obs.NewRecorder(clock)
	engine.Obs = rec
	engine.Trace = trace.New(clock)
	engine.Trace.Attach(rec)
	src, err := engine.BootHypervisor(hv.KindXen)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.CreateVM(hv.Config{
		Name: "golden-vm", VCPUs: 1, MemBytes: 1 << 30,
		HugePages: true, Seed: 1000, InPlaceCompatible: true,
	}); err != nil {
		t.Fatal(err)
	}
	_, rep, err := engine.InPlace(src, hv.KindKVM, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return rec, rep
}

// TestChromeTraceGolden pins the exporter's byte-exact output for the
// canonical single-VM run. Regenerate with:
//
//	go test ./internal/core/ -run TestChromeTraceGolden -update-golden
func TestChromeTraceGolden(t *testing.T) {
	rec, _ := tracedInPlace(t)
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "inplace_trace.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Chrome trace diverged from golden file %s.\ngot %d bytes, want %d.\n"+
			"If the change is intentional, rerun with -update-golden.",
			golden, buf.Len(), len(want))
	}
}

// TestTraceDeterministicAcrossWorkers: the full deterministic export
// surface (Chrome trace, JSONL spans, metrics JSON) must be
// byte-identical at -workers=1 and -workers=8.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	defer par.SetWorkers(0)
	type snapshot struct{ chrome, jsonl, mets []byte }
	grab := func(workers int) snapshot {
		par.SetWorkers(workers)
		rec, _ := tracedInPlace(t)
		var c, j, m bytes.Buffer
		if err := rec.WriteChromeTrace(&c); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteJSONL(&j); err != nil {
			t.Fatal(err)
		}
		if err := rec.Metrics().WriteMetricsJSON(&m, false); err != nil {
			t.Fatal(err)
		}
		return snapshot{c.Bytes(), j.Bytes(), m.Bytes()}
	}
	one := grab(1)
	eight := grab(8)
	if !bytes.Equal(one.chrome, eight.chrome) {
		t.Error("Chrome trace differs between workers=1 and workers=8")
	}
	if !bytes.Equal(one.jsonl, eight.jsonl) {
		t.Error("JSONL span export differs between workers=1 and workers=8")
	}
	if !bytes.Equal(one.mets, eight.mets) {
		t.Error("metrics export differs between workers=1 and workers=8")
	}
}

// TestSpanTreeShape: the recorded tree must mirror the Fig. 3 workflow —
// every phase nested under the inplace-tp root, in order.
func TestSpanTreeShape(t *testing.T) {
	rec, rep := tracedInPlace(t)
	roots := rec.Roots()
	if len(roots) != 1 {
		t.Fatalf("want 1 root span, got %d", len(roots))
	}
	root := roots[0]
	if root.Name != "inplace-tp" || !root.Ended() {
		t.Fatalf("root = %q ended=%v", root.Name, root.Ended())
	}
	want := []string{
		trace.StepLoadImage, trace.StepPRAMBuild, trace.StepPause,
		trace.StepTranslate, trace.StepKexec, trace.StepBoot,
		trace.StepPRAMParse, trace.StepRestore, trace.StepResume,
		trace.StepCleanup,
	}
	kids := root.Children()
	if len(kids) != len(want) {
		names := make([]string, len(kids))
		for i, k := range kids {
			names[i] = k.Name
		}
		t.Fatalf("want %d phases, got %v", len(want), names)
	}
	var prev *obs.Span
	for i, k := range kids {
		if k.Name != want[i] {
			t.Fatalf("phase %d = %q, want %q", i, k.Name, want[i])
		}
		if !k.Ended() {
			t.Fatalf("phase %q left open", k.Name)
		}
		if prev != nil && k.StartTime() < prev.StartTime() {
			t.Fatalf("phase %q starts before %q", k.Name, prev.Name)
		}
		prev = k
	}
	if root.Duration() != rep.Total {
		t.Fatalf("root duration %v != report total %v", root.Duration(), rep.Total)
	}
}

// TestMetricsMatchReport: the registry's counters must agree with the
// engine's own report — the cross-check that instruments are wired to
// the real data paths, not estimates.
func TestMetricsMatchReport(t *testing.T) {
	rec, rep := tracedInPlace(t)
	m := rec.Metrics()
	checks := []struct {
		name string
		unit string
		want int64
	}{
		{"tp.uisr_bytes", "bytes", int64(rep.UISRBytes)},
		{"tp.pram_metadata_bytes", "bytes", int64(rep.PRAMMetadataBytes)},
		{"tp.wiped_frames", "frames", int64(rep.WipedFrames)},
		{"tp.vms_transplanted", "vms", 1},
	}
	for _, c := range checks {
		if got := m.Counter(c.name, c.unit).Value(); got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
	if pages := m.Counter("pram.pages_preserved", "pages").Value(); pages <= 0 {
		t.Errorf("pram.pages_preserved = %d", pages)
	}
	if n := m.Histogram("tp.translate_virtual_s", "s", nil).Count(); n != 1 {
		t.Errorf("translate histogram count = %d", n)
	}
}

// TestNoRecorderIsFree: a nil engine.Obs must not change the simulation
// outcome at all.
func TestNoRecorderMatchesRecorded(t *testing.T) {
	_, traced := tracedInPlace(t)
	clock := simtime.NewClock()
	m := hw.NewMachine(clock, hw.M1())
	engine := NewEngine(clock, m)
	src, err := engine.BootHypervisor(hv.KindXen)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.CreateVM(hv.Config{
		Name: "golden-vm", VCPUs: 1, MemBytes: 1 << 30,
		HugePages: true, Seed: 1000, InPlaceCompatible: true,
	}); err != nil {
		t.Fatal(err)
	}
	_, plain, err := engine.InPlace(src, hv.KindKVM, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Total != traced.Total || plain.Downtime != traced.Downtime ||
		plain.UISRBytes != traced.UISRBytes {
		t.Fatalf("instrumentation changed the run: %+v vs %+v", plain, traced)
	}
}
