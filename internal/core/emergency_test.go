package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"hypertp/internal/fault"
	"hypertp/internal/hterr"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/obs"
	"hypertp/internal/par"
	rpt "hypertp/internal/report"
	"hypertp/internal/simtime"
)

// crashHost fail-stops a hypervisor via its Crashable interface.
func crashHost(t *testing.T, h hv.Hypervisor, reason string) hv.Crashable {
	t.Helper()
	c, ok := h.(hv.Crashable)
	if !ok {
		t.Fatalf("hypervisor %T does not model crashes", h)
	}
	if !c.Crash(reason) {
		t.Fatal("crash was not the first failure")
	}
	return c
}

// TestEmergencyTransplant is the headline reactive-recovery property: a
// fail-stopped hypervisor's VMs are salvaged from their frozen state and
// land running on the other hypervisor with guest memory bit-identical.
func TestEmergencyTransplant(t *testing.T) {
	for _, target := range []hv.Kind{hv.KindKVM, hv.KindNOVA} {
		t.Run("xen-to-"+target.String(), func(t *testing.T) {
			b := newBench(t, hw.M1())
			rec := obs.NewRecorder(b.clock)
			b.engine.Obs = rec
			src := bootSmallVMs(t, b, hv.KindXen, 3)
			pre := checksumVMs(t, src.VMs())
			crashHost(t, src, "injected panic")
			for _, vm := range src.VMs() {
				if !vm.Paused() {
					t.Fatalf("VM %q still running after crash", vm.Config.Name)
				}
			}

			dst, rep, err := b.engine.Emergency(src, target, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if dst.Kind() != target {
				t.Fatalf("recovered onto %v, want %v", dst.Kind(), target)
			}
			if !rep.Emergency || rep.Outcome != rpt.OutcomeRecovered {
				t.Fatalf("report = %+v", rep)
			}
			if got := rep.Summary().Kind; got != "emergency" {
				t.Fatalf("summary kind = %q", got)
			}
			if len(dst.VMs()) != 3 {
				t.Fatalf("%d VMs recovered, want 3", len(dst.VMs()))
			}
			for _, vm := range dst.VMs() {
				if vm.Paused() {
					t.Fatalf("VM %q left paused after recovery", vm.Config.Name)
				}
				if vm.Guest != nil && !vm.Guest.AllDriversRunning() {
					t.Fatalf("VM %q drivers not running after recovery", vm.Config.Name)
				}
			}
			if got := checksumVMs(t, dst.VMs()); !reflect.DeepEqual(got, pre) {
				t.Fatal("guest checksums do not survive emergency recovery")
			}
			if rep.Downtime <= 0 || rep.Downtime != rep.Total {
				t.Fatalf("downtime = %v total = %v", rep.Downtime, rep.Total)
			}
			if spanNames(rec)["emergency-tp"] != 1 {
				t.Fatal("no emergency-tp span recorded")
			}
		})
	}
}

// TestEmergencyFencesHungHypervisor: a hang is only suspected-dead; the
// emergency path must fence it into the fail-stopped state before
// salvage, and recovery proceeds identically from there.
func TestEmergencyFencesHungHypervisor(t *testing.T) {
	b := newBench(t, hw.M1())
	src := bootSmallVMs(t, b, hv.KindKVM, 2)
	pre := checksumVMs(t, src.VMs())
	c := src.(hv.Crashable)
	if !c.Hang("scheduler wedge") {
		t.Fatal("hang was not the first failure")
	}

	dst, rep, err := b.engine.Emergency(src, hv.KindXen, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !c.Crashed() || c.Hung() {
		t.Fatal("hung hypervisor was not fenced into the crashed state")
	}
	if rep.Outcome != rpt.OutcomeRecovered {
		t.Fatalf("outcome = %s", rep.Outcome)
	}
	if got := checksumVMs(t, dst.VMs()); !reflect.DeepEqual(got, pre) {
		t.Fatal("checksums changed across hang recovery")
	}
}

// TestEmergencyGuards: the emergency path refuses the cases that make no
// sense — a healthy source, a same-kind target, an empty host.
func TestEmergencyGuards(t *testing.T) {
	b := newBench(t, hw.M1())
	src := bootSmallVMs(t, b, hv.KindXen, 1)
	if _, _, err := b.engine.Emergency(src, hv.KindKVM, DefaultOptions()); !errors.Is(err, hterr.ErrIncompatibleTarget) {
		t.Fatalf("healthy source: err = %v, want incompatible", err)
	}
	crashHost(t, src, "panic")
	if _, _, err := b.engine.Emergency(src, hv.KindXen, DefaultOptions()); !errors.Is(err, hterr.ErrIncompatibleTarget) {
		t.Fatalf("same-kind target: err = %v, want incompatible", err)
	}

	empty, err := b.engine.BootHypervisor(hv.KindKVM)
	if err != nil {
		t.Fatal(err)
	}
	// Second hypervisor on the same machine is only for the guard check.
	empty.(hv.Crashable).Crash("panic")
	if _, _, err := b.engine.Emergency(empty, hv.KindXen, DefaultOptions()); !errors.Is(err, hterr.ErrIncompatibleTarget) {
		t.Fatalf("empty host: err = %v, want incompatible", err)
	}
}

// TestEmergencySalvageExhaustionLeavesHostFrozen: when pre-kexec salvage
// faults exhaust the retry budget, the host must stay exactly as the
// crash left it — VMs frozen, memory intact, error classed "crash", not
// "lost" — and a later clean attempt must succeed.
func TestEmergencySalvageExhaustionLeavesHostFrozen(t *testing.T) {
	b := newBench(t, hw.M1())
	src := bootSmallVMs(t, b, hv.KindXen, 2)
	pre := checksumVMs(t, src.VMs())
	crashHost(t, src, "injected panic")

	// DefaultRetryPolicy allows 3 attempts; force all three PRAM builds
	// to fail so the salvage gives up.
	b.engine.Fault = fault.NewPlan(7, 0).
		ForceAt(fault.SitePRAMBuild, 1).
		ForceAt(fault.SitePRAMBuild, 2).
		ForceAt(fault.SitePRAMBuild, 3).
		SetClock(b.clock)
	dst, rep, err := b.engine.Emergency(src, hv.KindKVM, DefaultOptions())
	if !errors.Is(err, hterr.ErrHypervisorCrashed) || errors.Is(err, hterr.ErrVMLost) {
		t.Fatalf("err = %v, want crash class without VM loss", err)
	}
	if hterr.Label(hterr.Class(err)) != "crash" {
		t.Fatalf("error class = %v", hterr.Class(err))
	}
	if dst != nil {
		t.Fatal("failed salvage produced a hypervisor")
	}
	// Two absorbed retries plus the exhausting shot: three attempts.
	if rep == nil || rep.Outcome != rpt.OutcomeCrashed || rep.Faults != 2 || rep.Attempts != 3 {
		t.Fatalf("report = %+v", rep)
	}
	if len(src.VMs()) != 2 {
		t.Fatalf("%d VMs on frozen host, want 2", len(src.VMs()))
	}
	if got := checksumVMs(t, src.VMs()); !reflect.DeepEqual(got, pre) {
		t.Fatal("guest memory changed across failed salvage")
	}

	// The frozen host is still recoverable once the faults clear.
	b.engine.Fault = nil
	dst, rep, err = b.engine.Emergency(src, hv.KindKVM, DefaultOptions())
	if err != nil {
		t.Fatalf("retry after failed salvage: %v", err)
	}
	if rep.Outcome != rpt.OutcomeRecovered || len(dst.VMs()) != 2 {
		t.Fatalf("retry report = %+v, %d VMs", rep, len(dst.VMs()))
	}
	if got := checksumVMs(t, dst.VMs()); !reflect.DeepEqual(got, pre) {
		t.Fatal("checksums do not survive the retried recovery")
	}
}

// TestEmergencyAbsorbsPostKexecFaults: the forward-recovery loops carry
// over from the planned path — a boot crash during an emergency is
// absorbed and the recovery still lands.
func TestEmergencyAbsorbsPostKexecFaults(t *testing.T) {
	b := newBench(t, hw.M1())
	rec := obs.NewRecorder(b.clock)
	b.engine.Obs = rec
	src := bootSmallVMs(t, b, hv.KindXen, 2)
	pre := checksumVMs(t, src.VMs())
	crashHost(t, src, "injected panic")
	b.engine.Fault = fault.NewPlan(3, 0).
		ForceAt(fault.SiteHVBoot, 1).
		ForceAt(fault.SiteUISRRestore, 2).
		SetClock(b.clock).SetRecorder(rec)

	dst, rep, err := b.engine.Emergency(src, hv.KindKVM, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults != 2 || rep.Attempts != 3 {
		t.Fatalf("faults = %d attempts = %d", rep.Faults, rep.Attempts)
	}
	if got := checksumVMs(t, dst.VMs()); !reflect.DeepEqual(got, pre) {
		t.Fatal("checksums do not survive faulted emergency")
	}
	spans := spanNames(rec)
	if spans["recovery:"+string(fault.SiteHVBoot)] == 0 ||
		spans["recovery:"+string(fault.SiteUISRRestore)] == 0 {
		t.Fatal("recovery spans missing from emergency trace")
	}
}

// TestEmergencyDeterminismAcrossWorkers: like the planned path, the
// emergency recovery schedule is a pure function of (seed, config) — the
// host worker count must not leak into the report or the shot list.
func TestEmergencyDeterminismAcrossWorkers(t *testing.T) {
	defer par.SetWorkers(0)
	type run struct {
		report string
		shots  string
	}
	grab := func(workers int) run {
		par.SetWorkers(workers)
		b := newBench(t, hw.M1())
		src := bootSmallVMs(t, b, hv.KindXen, 4)
		crashHost(t, src, "injected panic")
		plan := fault.NewPlan(11, 0).
			ForceAt(fault.SitePRAMBuild, 1).
			ForceAt(fault.SiteHVBoot, 1).
			ForceAt(fault.SiteUISRRestore, 3).
			SetClock(b.clock)
		b.engine.Fault = plan
		_, rep, err := b.engine.Emergency(src, hv.KindKVM, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return run{fmt.Sprintf("%+v", *rep), fmt.Sprintf("%v", plan.Shots())}
	}
	one := grab(1)
	eight := grab(8)
	if one.report != eight.report {
		t.Fatalf("reports differ between -workers 1 and 8:\n%s\nvs\n%s", one.report, eight.report)
	}
	if one.shots != eight.shots {
		t.Fatalf("fired shots differ between -workers 1 and 8:\n%s\nvs\n%s", one.shots, eight.shots)
	}
	again := grab(8)
	if eight.report != again.report || eight.shots != again.shots {
		t.Fatal("identical wide runs differ")
	}
}

// BenchmarkEmergencyTransplant measures the full crash-to-running cycle:
// boot, load, crash, salvage, micro-reboot, restore.
func BenchmarkEmergencyTransplant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clock := simtime.NewClock()
		m := hw.NewMachine(clock, hw.M1())
		e := NewEngine(clock, m)
		src, err := e.BootHypervisor(hv.KindXen)
		if err != nil {
			b.Fatal(err)
		}
		for v := 0; v < 4; v++ {
			vm, err := src.CreateVM(hv.Config{
				Name: vmName(v), VCPUs: 1, MemBytes: 256 << 20,
				HugePages: true, Seed: uint64(v), InPlaceCompatible: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := vm.Guest.WriteWorkingSet(0, 64); err != nil {
				b.Fatal(err)
			}
		}
		src.(hv.Crashable).Crash("bench")
		b.StartTimer()
		if _, _, err := e.Emergency(src, hv.KindKVM, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
