// Emergency is the reactive half of the transplant engine: where InPlace
// performs a planned transplant of a healthy hypervisor, Emergency
// salvages a crashed one. The failure model is ReHype's — the hypervisor
// fail-stops (or hangs and is fenced), every vCPU freezes, and guest
// memory plus the VM_i State structures survive intact in place. That
// survival is what makes recovery a transplant rather than a reboot: the
// frozen structures are translated to UISR exactly like a planned save,
// preserved across a micro-reboot into the *other* pool member, and the
// VMs resume where the crash stopped them.
package core

import (
	"fmt"
	"time"

	"hypertp/internal/fault"
	"hypertp/internal/guest"
	"hypertp/internal/hterr"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/kexec"
	"hypertp/internal/obs"
	"hypertp/internal/par"
	"hypertp/internal/pram"
	rpt "hypertp/internal/report"
	"hypertp/internal/trace"
	"hypertp/internal/uisr"
)

// Emergency transplants every VM off a crashed (or hung) hypervisor onto
// a freshly booted hypervisor of the target kind. The capture side is
// pause-less: the crash already stopped every vCPU, so salvage reads the
// frozen VM_i State directly — no pause phase, no device pre-quiesce
// beyond what the guests still need.
//
// Failure semantics differ from InPlace on the two sides of the kexec:
//
//   - Before the micro-reboot, nothing has been destroyed — the frozen
//     host IS the backup. Salvage faults are retried under the engine's
//     RetryPolicy; on exhaustion the host is left frozen (VMs intact,
//     outcome "crashed", error class "crash") for a later attempt.
//   - After the micro-reboot, the wipe has reclaimed the crashed
//     hypervisor and the UISR blobs in preserved RAM are the only copy of
//     the VMs' platform state: recovery can only go forward, exactly as
//     in InPlace.
//
// Detection latency is the caller's to account (the reactive detector
// observed the crash; the engine only sees the salvage), so the report
// measures from salvage start. releaseVMState is deliberately skipped: a
// crashed hypervisor cannot run its own teardown, and the kexec wipe
// reclaims every frame it owned anyway.
func (e *Engine) Emergency(src hv.Hypervisor, target hv.Kind, opts Options) (hv.Hypervisor, *InPlaceReport, error) {
	if src.Machine() != e.Machine {
		return nil, nil, hterr.Incompatible(fmt.Errorf("core: source hypervisor is not on this machine"))
	}
	crashed, ok := src.(hv.Crashable)
	if !ok {
		return nil, nil, hterr.Incompatible(fmt.Errorf("core: hypervisor %T does not model crashes", src))
	}
	if !crashed.Crashed() && !crashed.Hung() {
		return nil, nil, hterr.Incompatible(fmt.Errorf("core: emergency transplant of healthy hypervisor %s", src.Name()))
	}
	if src.Kind() == target {
		return nil, nil, hterr.Incompatible(fmt.Errorf("core: emergency transplant to the same hypervisor kind %v", target))
	}
	vms := src.VMs()
	if len(vms) == 0 {
		return nil, nil, hterr.Incompatible(fmt.Errorf("core: no VMs to salvage (reboot the host instead)"))
	}
	// A hung hypervisor is only suspected-dead; fence it into the
	// fail-stopped state before touching its structures, so a late
	// revival cannot race the salvage.
	if crashed.Hung() {
		crashed.Fence("fenced for emergency recovery")
	}

	cost := e.Machine.Profile.Cost
	report := &InPlaceReport{Source: src.Name(), Target: target.String(), Emergency: true}
	start := e.Clock.Now()
	root := e.Obs.Start("emergency-tp",
		obs.A("source", src.Name()), obs.A("target", target.String()),
		obs.A("vms", len(vms)), obs.A("reason", crashed.CrashReason()))
	defer root.End()
	mets := e.Obs.Metrics()
	mets.Counter("tp.emergencies", "transplants").Add(1)
	mets.Counter("tp.vms_transplanted", "vms").Add(int64(len(vms)))
	report.Attempts = 1
	retry := e.Retry
	if retry.MaxAttempts == 0 {
		retry = fault.DefaultRetryPolicy()
	}

	var (
		img        *kexec.Image
		ps         *pram.Structure
		blobFrames [][]hw.MFN
		err        error
	)
	// frozen abandons the salvage before the point of no return. Unlike
	// InPlace's rollback there is nothing to resume — the host stays
	// exactly as the crash left it, VMs frozen with their state intact,
	// and only the salvage's own staging allocations are returned.
	frozen := func(cause error) (hv.Hypervisor, *InPlaceReport, error) {
		fz := e.Obs.Start("frozen", obs.A("cause", cause.Error()))
		for _, frames := range blobFrames {
			for _, f := range frames {
				_ = e.Machine.Mem.Free(f)
			}
		}
		if ps != nil {
			_ = ps.Release(e.Machine.Mem)
			ps = nil
		}
		if img != nil {
			_ = img.Unload(e.Machine)
			img = nil
		}
		fz.End()
		e.Trace.Emit(trace.StepCleanup, "emergency salvage abandoned; host stays frozen")
		mets.Counter("tp.emergencies_frozen", "transplants").Add(1)
		report.Outcome = rpt.OutcomeCrashed
		report.Total = e.Clock.Now() - start
		root.SetAttr("outcome", string(rpt.OutcomeCrashed))
		return nil, report, hterr.HypervisorCrashed(cause)
	}
	lost := func(cause error) (hv.Hypervisor, *InPlaceReport, error) {
		mets.Counter("tp.vms_lost", "vms").Add(int64(len(vms)))
		root.SetAttr("outcome", "lost")
		return nil, nil, hterr.VMLost(cause)
	}
	// salvageRetry charges one pre-kexec recovery pass (the salvage stage
	// re-runs against the frozen, unchanging source).
	salvageRetry := func(site fault.Site, extra time.Duration) {
		rec := e.Obs.Start("recovery:"+string(site), obs.A("charge", extra))
		report.Faults++
		report.Attempts++
		report.PRAM += extra
		e.Clock.Advance(extra)
		rec.End()
		mets.Counter("tp.recoveries", "recoveries").Add(1)
		e.Trace.Emit(trace.StepPRAMBuild, "salvage fault at %s absorbed; stage re-run (+%v)", site, extra)
	}
	// recovered charges one post-kexec recovery pass, as in InPlace.
	recovered := func(site fault.Site, extra time.Duration) {
		rec := e.Obs.Start("recovery:"+string(site), obs.A("charge", extra))
		report.Faults++
		report.Attempts++
		report.Reboot += extra
		e.Clock.Advance(extra)
		rec.End()
		mets.Counter("tp.recoveries", "recoveries").Add(1)
		e.Trace.Emit(trace.StepKexec, "crash at %s absorbed; stage re-run (+%v)", site, extra)
	}

	// ❶ Stage the target image. Nothing was preloaded — the crash was not
	// planned — so this runs inside the outage.
	sp := e.Obs.Start(trace.StepLoadImage)
	for attempt := 1; ; attempt++ {
		if ferr := e.Fault.Fire(fault.SiteKexecLoad); ferr != nil {
			if attempt >= retry.Attempts() {
				sp.End()
				return frozen(fmt.Errorf("core: emergency image load failed %d times: %w", attempt, ferr))
			}
			salvageRetry(fault.SiteKexecLoad, 0)
			continue
		}
		if img, err = kexec.Load(e.Machine, target); err != nil {
			sp.End()
			return frozen(err)
		}
		break
	}
	e.Trace.Emit(trace.StepLoadImage, "%s image staged (%d MiB) for emergency recovery", target, img.Bytes>>20)
	sp.End()

	// ❷' Pause-less capture: the vCPUs are already stopped, so the pause
	// phase collapses to the guest device protocol. A fresh crash arrives
	// with drivers running (quiesced post hoc from the frozen memory
	// image); a double fault mid-transplant arrives already prepared.
	sp = e.Obs.Start(trace.StepPause)
	guests := make(map[string]*guest.Guest, len(vms))
	for _, vm := range vms {
		if !vm.Paused() {
			sp.End()
			return frozen(fmt.Errorf("core: VM %q still running on crashed hypervisor", vm.Config.Name))
		}
		if vm.Guest != nil {
			if vm.Guest.AllDriversRunning() {
				if err := vm.Guest.PrepareTransplant(); err != nil {
					sp.End()
					return frozen(err)
				}
			}
			guests[vm.Config.Name] = vm.Guest
		}
	}
	e.Trace.Emit(trace.StepPause, "%d VMs already frozen by the crash; device protocol reconciled", len(vms))
	sp.End()

	// ❸' Salvage: export memory maps and build PRAM from the frozen
	// source, then translate the frozen VM_i State to UISR. MemExtents
	// and SaveUISR are deliberately not crash-barriered — reading the
	// dead hypervisor's structures is the whole point.
	sp = e.Obs.Start(trace.StepPRAMBuild)
	files := make([]pram.File, 0, len(vms))
	pramCosts := make([]time.Duration, 0, len(vms))
	var pages uint64
	for _, vm := range vms {
		extents, err := src.MemExtents(vm.ID)
		if err != nil {
			sp.End()
			return frozen(err)
		}
		for _, ex := range extents {
			pages += ex.Pages()
		}
		files = append(files, pram.File{
			Name: vm.Config.Name, VMID: uint32(vm.ID),
			Extents: extents,
		})
		pramCosts = append(pramCosts, cost.PRAMBuild(vm.Config.MemBytes, opts.HugePages))
	}
	pramCharge := e.elapsed(pramCosts, opts.Parallel)
	for attempt := 1; ; attempt++ {
		if ferr := e.Fault.Fire(fault.SitePRAMBuild); ferr != nil {
			if attempt >= retry.Attempts() {
				sp.End()
				return frozen(fmt.Errorf("core: emergency PRAM build failed %d times: %w", attempt, ferr))
			}
			salvageRetry(fault.SitePRAMBuild, pramCharge)
			continue
		}
		if ps, err = pram.Build(e.Machine.Mem, files, e.pramBuildOptions(opts)); err != nil {
			sp.End()
			return frozen(err)
		}
		break
	}
	report.PRAM += pramCharge
	e.Clock.Advance(pramCharge)
	e.Trace.Emit(trace.StepPRAMBuild, "%d files salvaged, %d B metadata", len(files), ps.MetadataBytes())
	mets.Counter("pram.pages_preserved", "pages").Add(int64(pages))
	sp.SetAttr("files", len(files))
	sp.SetAttr("pages", pages)
	sp.End()

	// The translation stage mirrors InPlace's staging (sequential
	// SaveUISR, parallel Encode, sequential blob writes) so the preserved
	// bytes are identical for any worker count. The transplant cache is
	// deliberately bypassed: a crashed hypervisor's fingerprint chain is
	// not trusted, and the salvage must read the structures that actually
	// froze, not what a cache believes they were.
	type savedVM struct {
		res    VMResult
		inPl   bool
		frames []hw.MFN
	}
	sp = e.Obs.Start(trace.StepTranslate)
	states := make([]*uisr.VMState, 0, len(vms))
	costs := make([]time.Duration, 0, len(vms))
	for _, vm := range vms {
		c := cost.Translate(vm.Config.VCPUs, vm.Config.MemBytes)
		costs = append(costs, c)
		for attempt := 1; ; attempt++ {
			if ferr := e.Fault.Fire(fault.SiteUISRTranslate); ferr != nil {
				if attempt >= retry.Attempts() {
					sp.End()
					return frozen(fmt.Errorf("core: salvage translation of %q failed %d times: %w", vm.Config.Name, attempt, ferr))
				}
				salvageRetry(fault.SiteUISRTranslate, c)
				continue
			}
			break
		}
		st, err := src.SaveUISR(vm.ID)
		if err != nil {
			sp.End()
			return frozen(err)
		}
		st.MemMap = nil
		states = append(states, st)
	}
	encoded, err := par.Map(states, func(_ int, st *uisr.VMState) ([]byte, error) {
		return uisr.Encode(st)
	})
	if err != nil {
		sp.End()
		return frozen(err)
	}
	saved := make([]savedVM, 0, len(vms))
	blobFiles := make([]pram.File, 0, len(vms))
	for i, vm := range vms {
		blob := encoded[i]
		frames, err := writeBlob(e.Machine.Mem, blob)
		if err != nil {
			sp.End()
			return frozen(err)
		}
		blobFrames = append(blobFrames, frames)
		saved = append(saved, savedVM{
			res: VMResult{
				Name: vm.Config.Name, OldID: vm.ID,
				VCPUs: vm.Config.VCPUs, Bytes: vm.Config.MemBytes,
				UISRBytes: uint64(len(blob)),
			},
			inPl:   vm.Config.InPlaceCompatible,
			frames: frames,
		})
		report.UISRBytes += uint64(len(blob))
		blobFiles = append(blobFiles, blobFile(vm.Config.Name, frames))
	}
	allFiles := append(append([]pram.File(nil), ps.Files...), blobFiles...)
	relErr := ps.Release(e.Machine.Mem)
	ps = nil
	if relErr != nil {
		return frozen(relErr)
	}
	if ps, err = pram.Build(e.Machine.Mem, allFiles, e.pramBuildOptions(opts)); err != nil {
		return frozen(err)
	}
	report.Translation = e.elapsed(costs, opts.Parallel)
	e.Clock.Advance(report.Translation)
	report.PRAMMetadataBytes = ps.MetadataBytes()
	e.Trace.Emit(trace.StepTranslate, "%d frozen VM_i states salvaged to UISR (%d B)", len(vms), report.UISRBytes)
	mets.Counter("tp.uisr_bytes", "bytes").Add(int64(report.UISRBytes))
	sp.SetAttr("uisr_bytes", report.UISRBytes)
	sp.End()

	// No releaseVMState here: a crashed hypervisor cannot run teardown,
	// and everything it owned — VM_i State, its own HV frames, its
	// toolstack — sits outside the preserve set, so the wipe below
	// reclaims it wholesale. The kexec itself is the point of no return.
	sp = e.Obs.Start(trace.StepKexec)
	res, err := kexec.Exec(e.Machine, img, ps.Pointer, ps.FrameRanges())
	if err != nil {
		return lost(err)
	}
	report.WipedFrames = res.WipedFrames
	var totalMem uint64
	for _, vm := range vms {
		totalMem += vm.Config.MemBytes
	}
	bootBase := cost.BootLinuxKVM
	switch target {
	case hv.KindXen:
		bootBase = cost.BootXenDom0
	case hv.KindNOVA:
		bootBase = cost.BootNOVA
	}
	e.Trace.Emit(trace.StepKexec, "wiped %d frames (crashed hypervisor reclaimed), preserved %d", res.WipedFrames, res.PreservedFrames)
	mets.Counter("tp.wiped_frames", "frames").Add(int64(res.WipedFrames))
	report.Reboot = bootBase + cost.PRAMParse(totalMem, len(vms), opts.HugePages)
	e.Clock.Advance(report.Reboot)
	if ferr := e.Fault.Fire(fault.SiteKexecHandover); ferr != nil {
		recovered(fault.SiteKexecHandover, bootBase)
	}
	sp.SetAttr("wiped_frames", res.WipedFrames)
	sp.SetAttr("preserved_frames", res.PreservedFrames)
	sp.End()

	// ❺ Boot the replacement hypervisor and re-parse PRAM — identical
	// forward-recovery machinery to the planned path from here on.
	sp = e.Obs.Start(trace.StepBoot)
	var dst hv.Hypervisor
	bootStart := e.Clock.Now()
	for attempt := 1; ; attempt++ {
		if ferr := e.Fault.Fire(fault.SiteHVBoot); ferr != nil {
			if attempt >= retry.Attempts() {
				return lost(fmt.Errorf("core: replacement hypervisor failed to boot %d times: %w", attempt, ferr))
			}
			if werr := retry.Exceeded(attempt, e.Clock.Now()-bootStart); werr != nil {
				return lost(fmt.Errorf("core: replacement hypervisor boot: %w", werr))
			}
			recovered(fault.SiteHVBoot, bootBase)
			continue
		}
		if dst, err = e.BootHypervisor(target); err != nil {
			return lost(err)
		}
		break
	}
	e.Trace.Emit(trace.StepBoot, "%s up (generation %d) replacing crashed %s", dst.Name(), e.Machine.Generation(), report.Source)
	sp.End()
	sp = e.Obs.Start(trace.StepPRAMParse)
	ptr, err := kexec.ParseCmdline(e.Machine.Cmdline)
	if err != nil {
		return lost(err)
	}
	reparseCost := cost.PRAMParse(totalMem, len(vms), opts.HugePages)
	var parsed *pram.Structure
	parseStart := e.Clock.Now()
	for attempt := 1; ; attempt++ {
		if ferr := e.Fault.Fire(fault.SitePRAMParse); ferr != nil {
			if attempt >= retry.Attempts() {
				return lost(fmt.Errorf("core: PRAM parse failed %d times: %w", attempt, ferr))
			}
			if werr := retry.Exceeded(attempt, e.Clock.Now()-parseStart); werr != nil {
				return lost(fmt.Errorf("core: PRAM parse: %w", werr))
			}
			recovered(fault.SitePRAMParse, reparseCost)
			continue
		}
		if parsed, err = pram.Parse(e.Machine.Mem, ptr); err != nil {
			return lost(fmt.Errorf("core: PRAM lost across reboot: %w", err))
		}
		break
	}
	e.Trace.Emit(trace.StepPRAMParse, "%d files recovered from cmdline pointer", len(parsed.Files))
	sp.SetAttr("files", len(parsed.Files))
	sp.End()

	// ❻ Restore each VM from its salvaged UISR blob, adopting its memory
	// in place.
	sp = e.Obs.Start(trace.StepRestore)
	if !opts.EarlyRestoration {
		report.Restoration += cost.RestoreServiceWait
		e.Clock.Advance(cost.RestoreServiceWait)
	}
	memFiles := map[string]pram.File{}
	blobFileMap := map[string]pram.File{}
	for _, f := range parsed.Files {
		if name, ok := blobFileName(f.Name); ok {
			blobFileMap[name] = f
		} else {
			memFiles[f.Name] = f
		}
	}
	restored, err := par.Map(saved, func(_ int, s savedVM) (*uisr.VMState, error) {
		bf, ok := blobFileMap[s.res.Name]
		if !ok {
			return nil, fmt.Errorf("core: UISR blob for %q missing after reboot", s.res.Name)
		}
		blob, err := readBlob(e.Machine.Mem, bf)
		if err != nil {
			return nil, err
		}
		st, err := uisr.Decode(blob)
		if err != nil {
			return nil, fmt.Errorf("core: UISR blob for %q corrupt: %w", s.res.Name, err)
		}
		return st, nil
	})
	if err != nil {
		return lost(err)
	}
	costs = costs[:0]
	for i := range saved {
		s := &saved[i]
		mf, ok := memFiles[s.res.Name]
		if !ok {
			return lost(fmt.Errorf("core: memory map for %q missing after reboot", s.res.Name))
		}
		st := restored[i]
		st.MemMap = mf.Extents
		var newVM *hv.VM
		restoreStart := e.Clock.Now()
		for attempt := 1; ; attempt++ {
			if ferr := e.Fault.Fire(fault.SiteUISRRestore); ferr != nil {
				if attempt >= retry.Attempts() {
					return lost(fmt.Errorf("core: restore of %q failed %d times: %w", s.res.Name, attempt, ferr))
				}
				if werr := retry.Exceeded(attempt, e.Clock.Now()-restoreStart); werr != nil {
					return lost(fmt.Errorf("core: restore of %q: %w", s.res.Name, werr))
				}
				recovered(fault.SiteUISRRestore, reparseCost)
				continue
			}
			if newVM, err = dst.RestoreUISR(st, hv.RestoreOptions{
				Mode:              hv.RestoreAdopt,
				InPlaceCompatible: s.inPl,
			}); err != nil {
				return lost(err)
			}
			break
		}
		s.res.NewID = newVM.ID
		e.Trace.Emit(trace.StepRestore, "%s restored as id %d", s.res.Name, newVM.ID)
		if g := guests[s.res.Name]; g != nil {
			if err := dst.AttachGuest(newVM.ID, g); err != nil {
				return lost(err)
			}
			e.Trace.Emit(trace.StepAttachGuest, "%s guest rebound", s.res.Name)
		}
		costs = append(costs, cost.Restore(s.res.VCPUs))
	}
	restore := e.elapsed(costs, opts.Parallel)
	report.Restoration += restore
	e.Clock.Advance(restore)
	sp.End()

	// ❼ Resume guests, complete the device protocol, free the ephemeral
	// PRAM metadata and UISR blobs.
	sp = e.Obs.Start(trace.StepResume)
	for i := range saved {
		s := &saved[i]
		if err := dst.Resume(s.res.NewID); err != nil {
			return lost(err)
		}
		if g := guests[s.res.Name]; g != nil {
			if err := g.CompleteTransplant(); err != nil {
				return lost(err)
			}
		}
		for _, f := range s.frames {
			if err := e.Machine.Mem.Free(f); err != nil {
				return lost(err)
			}
		}
		report.VMs = append(report.VMs, s.res)
	}
	e.Trace.Emit(trace.StepResume, "%d VMs resurrected on %s", len(saved), dst.Name())
	sp.End()
	sp = e.Obs.Start(trace.StepCleanup)
	if err := releaseParsedMetadata(e.Machine.Mem, parsed); err != nil {
		return lost(err)
	}
	sp.End()

	// The engine's downtime is the salvage-to-resume span; the detector
	// adds crash-to-detection latency on top when charging the SLO.
	report.Downtime = e.Clock.Now() - start
	report.Total = report.Downtime
	report.Network = cost.NICReinit
	report.NetworkDowntime = report.Downtime + cost.NICReinit
	// An emergency that completes IS a recovery — the crash it absorbed
	// counts even when no additional fault was injected.
	report.Outcome = rpt.OutcomeRecovered
	root.SetAttr("downtime", report.Downtime)
	root.SetAttr("total", report.Total)
	root.SetAttr("outcome", string(report.Outcome))
	mets.Histogram("tp.emergency_downtime_s", "s", obs.ExpBuckets(1e-2, 2, 16)).Observe(report.Downtime.Seconds())
	return dst, report, nil
}
