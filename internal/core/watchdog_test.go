package core

import (
	"errors"
	"testing"
	"time"

	"hypertp/internal/fault"
	"hypertp/internal/hterr"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/migration"
	"hypertp/internal/simnet"
	"hypertp/internal/simtime"
)

// TestBootLivelockHitsWatchdog: an "infinite retry" misconfiguration —
// huge attempt budget, every target boot failing — must terminate with
// ErrWatchdogExpired inside the virtual-time budget instead of spinning.
func TestBootLivelockHitsWatchdog(t *testing.T) {
	b := newBench(t, hw.M1())
	src := bootSmallVMs(t, b, hv.KindXen, 1)
	b.engine.Fault = fault.NewPlan(1, 1).Restrict(fault.SiteHVBoot).SetClock(b.clock)
	budget := 5 * time.Second
	b.engine.Retry = fault.RetryPolicy{MaxAttempts: 1 << 30, MaxElapsed: budget}
	start := b.clock.Now()
	_, _, err := b.engine.InPlace(src, hv.KindKVM, DefaultOptions())
	if err == nil {
		t.Fatal("livelocked boot loop returned nil")
	}
	if !errors.Is(err, hterr.ErrWatchdogExpired) {
		t.Fatalf("err = %v, want ErrWatchdogExpired", err)
	}
	// Past the kexec point a boot livelock is a lost host — the class
	// must say so, not hide it behind the watchdog.
	if !errors.Is(err, hterr.ErrVMLost) {
		t.Fatalf("err = %v, want ErrVMLost composition", err)
	}
	// Each failed boot charges a full boot of virtual time, so the loop
	// must die within budget + one boot, not after 2^30 attempts.
	if elapsed := b.clock.Now() - start; elapsed > budget+30*time.Second {
		t.Fatalf("livelock consumed %v of virtual time, budget %v", elapsed, budget)
	}
}

// TestMigrationLivelockHitsWatchdog: same property for the migration
// retry layer — a link that severs every attempt under an effectively
// unbounded attempt budget ends in a watchdog-classified abort, with the
// VM still running on the source.
func TestMigrationLivelockHitsWatchdog(t *testing.T) {
	clock := simtime.NewClock()
	srcB := hw.NewMachine(clock, hw.M1())
	dstB := hw.NewMachine(clock, hw.M1())
	src, err := NewEngine(clock, srcB).BootHypervisor(hv.KindXen)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewEngine(clock, dstB).BootHypervisor(hv.KindKVM)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := src.CreateVM(hv.Config{
		Name: "stuck", VCPUs: 1, MemBytes: 64 << 20, HugePages: true,
		Seed: 3, InPlaceCompatible: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	link := simnet.NewLink(clock, "flaky", simnet.Gbps1, 0)
	plan := fault.NewPlan(2, 1).Restrict(fault.SiteLinkAbort).SetClock(clock)
	link.SetFaults(plan)
	recv := migration.NewReceiver(clock, dst, 1)
	rep, err := MigrationTP(clock, MigrationTPParams{
		Link: link, Source: src, Dest: recv, VMID: vm.ID,
		Fault: plan,
		Retry: fault.RetryPolicy{MaxAttempts: 1 << 30, BaseBackoff: time.Millisecond, MaxElapsed: 30 * time.Second},
	})
	if err == nil {
		t.Fatalf("livelocked migration returned nil (report %+v)", rep)
	}
	if !errors.Is(err, hterr.ErrWatchdogExpired) {
		t.Fatalf("err = %v, want ErrWatchdogExpired", err)
	}
	if !errors.Is(err, hterr.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted (rolled back, not lost)", err)
	}
	got, ok := src.LookupVM(vm.ID)
	if !ok || got.Paused() {
		t.Fatal("VM not running on the source after watchdog abort")
	}
}
