package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"hypertp/internal/hv"
	"hypertp/internal/hv/kvm"
	"hypertp/internal/hv/xen"
	"hypertp/internal/hw"
	"hypertp/internal/simtime"
	"hypertp/internal/uisr"
)

// crossState runs one VM's platform state through the full heterogeneous
// journey: created on Xen, saved to UISR, restored into KVM's formats,
// saved again, restored back into Xen, saved a third time. Returns the
// three UISR snapshots.
func crossState(t *testing.T, vcpus int, seed uint64) (onXen, onKVM, backOnXen *uisr.VMState) {
	t.Helper()
	clock := simtime.NewClock()
	x1, err := xen.Boot(hw.NewMachine(clock, hw.M1()))
	if err != nil {
		t.Fatal(err)
	}
	k, err := kvm.Boot(hw.NewMachine(clock, hw.M1()))
	if err != nil {
		t.Fatal(err)
	}
	x2, err := xen.Boot(hw.NewMachine(clock, hw.M1()))
	if err != nil {
		t.Fatal(err)
	}

	cfg := hv.Config{Name: "cross", VCPUs: vcpus, MemBytes: 64 << 20, HugePages: true, Seed: seed}
	vm, err := x1.CreateVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x1.Pause(vm.ID)
	onXen, err = x1.SaveUISR(vm.ID)
	if err != nil {
		t.Fatal(err)
	}

	kvmVM, err := k.RestoreUISR(onXen, hv.RestoreOptions{Mode: hv.RestoreAllocate})
	if err != nil {
		t.Fatal(err)
	}
	onKVM, err = k.SaveUISR(kvmVM.ID)
	if err != nil {
		t.Fatal(err)
	}

	xenVM, err := x2.RestoreUISR(onKVM, hv.RestoreOptions{Mode: hv.RestoreAllocate})
	if err != nil {
		t.Fatal(err)
	}
	backOnXen, err = x2.SaveUISR(xenVM.ID)
	if err != nil {
		t.Fatal(err)
	}
	return onXen, onKVM, backOnXen
}

// The Table 2 common subset survives the full Xen→KVM→Xen journey
// field-for-field; the documented compatibility transforms (IOAPIC pins,
// platform timers) behave exactly as specified.
func TestCrossHypervisorStateJourney(t *testing.T) {
	onXen, onKVM, back := crossState(t, 2, 99)

	// vCPU architectural state is identical at every hop.
	for i := range onXen.VCPUs {
		a, b, c := onXen.VCPUs[i], onKVM.VCPUs[i], back.VCPUs[i]
		if !reflect.DeepEqual(a.Regs, b.Regs) || !reflect.DeepEqual(a.Regs, c.Regs) {
			t.Fatalf("vCPU %d GP registers changed across formats", i)
		}
		if !reflect.DeepEqual(a.SRegs, b.SRegs) || !reflect.DeepEqual(a.SRegs, c.SRegs) {
			t.Fatalf("vCPU %d system registers changed", i)
		}
		if !reflect.DeepEqual(a.MSRs, b.MSRs) || !reflect.DeepEqual(a.MSRs, c.MSRs) {
			t.Fatalf("vCPU %d MSR list changed", i)
		}
		if a.FPU != b.FPU || a.FPU != c.FPU {
			t.Fatalf("vCPU %d FPU image changed", i)
		}
		if !reflect.DeepEqual(a.XSave, b.XSave) || !reflect.DeepEqual(a.XSave, c.XSave) {
			t.Fatalf("vCPU %d XSAVE state changed", i)
		}
		if !reflect.DeepEqual(a.LAPIC, b.LAPIC) || !reflect.DeepEqual(a.LAPIC, c.LAPIC) {
			t.Fatalf("vCPU %d LAPIC state changed", i)
		}
		if !reflect.DeepEqual(a.MTRR, b.MTRR) || !reflect.DeepEqual(a.MTRR, c.MTRR) {
			t.Fatalf("vCPU %d MTRR state changed (the MSR encoding must be exact)", i)
		}
	}

	// PIT and RTC cross unchanged.
	if !reflect.DeepEqual(onXen.PIT, onKVM.PIT) || !reflect.DeepEqual(onXen.PIT, back.PIT) {
		t.Fatal("PIT state changed")
	}
	if onXen.RTC != onKVM.RTC || onXen.RTC != back.RTC {
		t.Fatal("RTC state changed")
	}

	// IOAPIC: 48 pins on Xen, narrowed to 24 on KVM (lower pins
	// preserved), widened back to 48 with the upper 24 masked.
	if onXen.IOAPIC.NumPins != uisr.XenIOAPICPins || onKVM.IOAPIC.NumPins != uisr.KVMIOAPICPins {
		t.Fatal("IOAPIC pin counts wrong")
	}
	for p := 0; p < uisr.KVMIOAPICPins; p++ {
		if onXen.IOAPIC.Redir[p] != onKVM.IOAPIC.Redir[p] ||
			onXen.IOAPIC.Redir[p] != back.IOAPIC.Redir[p] {
			t.Fatalf("IOAPIC pin %d changed", p)
		}
	}
	const maskBit = 1 << 16
	for p := uisr.KVMIOAPICPins; p < uisr.XenIOAPICPins; p++ {
		if back.IOAPIC.Redir[p] != maskBit {
			t.Fatalf("re-widened pin %d not masked", p)
		}
	}

	// Platform timers: dropped on kvmtool, re-synthesized (disabled) on
	// the return to Xen.
	if !onXen.HasHPET || !onXen.HasPMTimer {
		t.Fatal("Xen source missing platform timers")
	}
	if onKVM.HasHPET || onKVM.HasPMTimer {
		t.Fatal("kvmtool reported platform timers it does not emulate")
	}
	if !back.HasHPET {
		t.Fatal("return to Xen did not re-synthesize the HPET")
	}
	if back.HPET.Config != 0 {
		t.Fatal("re-synthesized HPET not disabled")
	}
}

// Property: the common-subset invariance holds for arbitrary seeds and
// vCPU counts.
func TestPropertyCrossJourney(t *testing.T) {
	f := func(seedRaw uint32, vcpusRaw uint8) bool {
		vcpus := int(vcpusRaw%4) + 1
		onXen, _, back := crossState(t, vcpus, uint64(seedRaw)+1)
		for i := range onXen.VCPUs {
			a, c := onXen.VCPUs[i], back.VCPUs[i]
			if !reflect.DeepEqual(a.Regs, c.Regs) ||
				!reflect.DeepEqual(a.SRegs, c.SRegs) ||
				!reflect.DeepEqual(a.MSRs, c.MSRs) ||
				!reflect.DeepEqual(a.MTRR, c.MTRR) ||
				a.FPU != c.FPU {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
