package core

import (
	"testing"

	"hypertp/internal/hv"
	"hypertp/internal/hw"
)

// Ten consecutive transplants back and forth must neither leak frames nor
// corrupt guest state — the engine gives every ephemeral byte back.
func TestRepeatedTransplantsNoLeak(t *testing.T) {
	b := newBench(t, hw.M1())
	h := b.bootWithVMs(t, hv.KindXen, 2, 1, 1)
	for _, vm := range h.VMs() {
		vm.Guest.WriteWorkingSet(hw.GFN(int(vm.ID)*5), 100)
	}
	guests := make(map[string]interface{ Verify() error })
	for _, vm := range h.VMs() {
		guests[vm.Config.Name] = vm.Guest
	}

	// Snapshot the steady-state frame census after the first transplant
	// (the Xen and KVM resident sets differ, so compare like with like).
	var xenFrames, kvmFrames uint64
	targets := []hv.Kind{hv.KindKVM, hv.KindXen}
	for i := 0; i < 10; i++ {
		target := targets[i%2]
		var err error
		h, _, err = b.engine.InPlace(h, target, DefaultOptions())
		if err != nil {
			t.Fatalf("transplant %d: %v", i, err)
		}
		alloc := b.m.Mem.AllocatedFrames()
		if target == hv.KindKVM {
			if kvmFrames == 0 {
				kvmFrames = alloc
			} else if alloc != kvmFrames {
				t.Fatalf("transplant %d: KVM-side frames %d, steady state %d (leak)",
					i, alloc, kvmFrames)
			}
		} else {
			if xenFrames == 0 {
				xenFrames = alloc
			} else if alloc != xenFrames {
				t.Fatalf("transplant %d: Xen-side frames %d, steady state %d (leak)",
					i, alloc, xenFrames)
			}
		}
		for name, g := range guests {
			if err := g.Verify(); err != nil {
				t.Fatalf("transplant %d: guest %s: %v", i, name, err)
			}
		}
		counts := b.m.Mem.CountByOwner()
		if counts[hw.OwnerPRAM] != 0 || counts[hw.OwnerKexecImage] != 0 {
			t.Fatalf("transplant %d: ephemeral frames leaked: %v", i, counts)
		}
	}
}

// A machine too full for the target kexec image must fail the transplant
// up front, before any VM is paused.
func TestInPlaceFailsWhenNoRoomForImage(t *testing.T) {
	b := newBench(t, hw.M1())
	h, err := b.engine.BootHypervisor(hv.KindXen)
	if err != nil {
		t.Fatal(err)
	}
	// One VM, then fill the rest of RAM so the image cannot stage.
	vm, err := h.CreateVM(hv.Config{
		Name: "vm", VCPUs: 1, MemBytes: 1 << 30, HugePages: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	free := b.m.Mem.FreeFrames()
	if _, err := b.m.Mem.Alloc(int(free)-100, hw.OwnerHV, -1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.engine.InPlace(h, hv.KindKVM, DefaultOptions()); err == nil {
		t.Fatal("transplant succeeded without room for the kexec image")
	}
	// The VM was never paused: the failure happened at image staging.
	if vm.Paused() {
		t.Fatal("VM paused despite staging failure")
	}
}

// The engine must work at the machine's VM capacity limit: M1 hosting 12
// x 1 GiB VMs (the paper's maximum for that machine).
func TestInPlaceAtCapacity(t *testing.T) {
	b := newBench(t, hw.M1())
	h := b.bootWithVMs(t, hv.KindXen, 12, 1, 1)
	dst, rep, err := b.engine.InPlace(h, hv.KindKVM, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(dst.VMs()) != 12 || len(rep.VMs) != 12 {
		t.Fatal("VM count wrong at capacity")
	}
}

// Mixed VM shapes in one transplant: sizes, vCPU counts and passthrough
// all at once.
func TestInPlaceHeterogeneousVMMix(t *testing.T) {
	b := newBench(t, hw.M1())
	h, err := b.engine.BootHypervisor(hv.KindXen)
	if err != nil {
		t.Fatal(err)
	}
	shapes := []hv.Config{
		{Name: "tiny", VCPUs: 1, MemBytes: 1 << 30, HugePages: true, Seed: 1},
		{Name: "wide", VCPUs: 8, MemBytes: 2 << 30, HugePages: true, Seed: 2},
		{Name: "tall", VCPUs: 2, MemBytes: 6 << 30, HugePages: true, Seed: 3},
		{Name: "gpu", VCPUs: 2, MemBytes: 1 << 30, HugePages: true, Seed: 4,
			PassthroughDevices: []string{"gpu0"}},
	}
	for _, cfg := range shapes {
		vm, err := h.CreateVM(cfg)
		if err != nil {
			t.Fatal(err)
		}
		vm.Guest.WriteWorkingSet(0, 64)
	}
	dst, rep, err := b.engine.InPlace(h, hv.KindKVM, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.VMs) != 4 {
		t.Fatalf("transplanted %d VMs", len(rep.VMs))
	}
	for _, vm := range dst.VMs() {
		if err := vm.Guest.Verify(); err != nil {
			t.Fatalf("VM %s: %v", vm.Config.Name, err)
		}
		if !vm.Guest.AllDriversRunning() {
			t.Fatalf("VM %s drivers not running", vm.Config.Name)
		}
	}
}

// 4K-backed (non-huge) guests transplant correctly too, just with more
// PRAM metadata.
func TestInPlaceWith4KGuests(t *testing.T) {
	b := newBench(t, hw.M1())
	h, err := b.engine.BootHypervisor(hv.KindXen)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := h.CreateVM(hv.Config{
		Name: "small-pages", VCPUs: 1, MemBytes: 64 << 20, HugePages: false, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	vm.Guest.WriteWorkingSet(0, 128)
	g := vm.Guest
	dst, rep, err := b.engine.InPlace(h, hv.KindKVM, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
	// 64 MiB at 4K granularity: 16384 entries x 8 B ≈ 128 KiB of PRAM
	// versus ~16 KiB for a huge-backed guest.
	if rep.PRAMMetadataBytes < 100<<10 {
		t.Fatalf("PRAM metadata = %d, want ≳128 KiB for 4K guest", rep.PRAMMetadataBytes)
	}
	if len(dst.VMs()) != 1 {
		t.Fatal("VM lost")
	}
}
