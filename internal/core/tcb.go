package core

// TCBComponent is one row of the paper's §4.4 trusted-computing-base
// accounting of HyperTP's code contribution.
type TCBComponent struct {
	Name  string
	KLOC  float64
	InTCB bool
	// Userspace marks code that runs outside the hypervisor kernel.
	Userspace bool
}

// TCBReport returns the §4.4 inventory: 15 KLOC total, of which 8.5 KLOC
// contribute to the TCB and nearly 90% of that is userspace.
func TCBReport() []TCBComponent {
	return []TCBComponent{
		{Name: "hypervisor changes (Xen + KVM)", KLOC: 2.2, InTCB: true, Userspace: false},
		{Name: "userspace management tools (libxl, kvmtool, PRAM/kexec)", KLOC: 5.2, InTCB: true, Userspace: true},
		{Name: "HyperTP orchestration", KLOC: 1.1, InTCB: true, Userspace: true},
		{Name: "testing, utilities and evaluation", KLOC: 6.1, InTCB: false, Userspace: true},
	}
}

// TCBTotals aggregates the report: total KLOC, TCB KLOC, and the fraction
// of TCB code in userspace.
func TCBTotals() (total, tcb, userspaceFrac float64) {
	var tcbUser float64
	for _, c := range TCBReport() {
		total += c.KLOC
		if c.InTCB {
			tcb += c.KLOC
			if c.Userspace {
				tcbUser += c.KLOC
			}
		}
	}
	return total, tcb, tcbUser / tcb
}
