package core

import (
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/tpcache"
	"hypertp/internal/uisr"
)

// PreStageTranslations warms the transplant cache for up to budget of
// the hypervisor's transplantable VMs: pause, save and encode the
// platform state exactly as InPlaceTP's cold path would, store it as a
// warm entry, resume. VMs that are already cached, already paused, or
// not InPlaceTP-compatible are skipped. Pure wall-clock work — no
// virtual time is charged, which is the point: the pool is filled
// outside any vulnerability window, so a later transplant skips the
// cold save inside one.
func PreStageTranslations(hyp hv.Hypervisor, m *hw.Machine, cache *tpcache.Cache, budget int) (int, error) {
	gen := m.Generation()
	kind := hyp.Kind()
	staged := 0
	for _, vm := range hyp.VMs() {
		if staged >= budget {
			break
		}
		if !vm.Config.InPlaceCompatible || vm.Paused() {
			continue
		}
		if cache.HasTranslation(kind, m, gen, vm.ID) {
			continue
		}
		if err := hyp.Pause(vm.ID); err != nil {
			return staged, err
		}
		st, err := hyp.SaveUISR(vm.ID)
		if err != nil {
			_ = hyp.Resume(vm.ID)
			return staged, err
		}
		// The memory map travels via PRAM, not the UISR blob — mirror
		// the engine's cold save so the staged bytes are the ones a cold
		// transplant would produce.
		st.MemMap = nil
		blob, err := uisr.Encode(st)
		if err != nil {
			_ = hyp.Resume(vm.ID)
			return staged, err
		}
		cache.StoreTranslation(kind, m, gen, vm.ID, blob, true)
		if err := hyp.Resume(vm.ID); err != nil {
			return staged, err
		}
		staged++
	}
	return staged, nil
}
