package core

import (
	"testing"
	"time"

	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/simtime"
	"hypertp/internal/trace"
)

type bench struct {
	clock  *simtime.Clock
	m      *hw.Machine
	engine *Engine
}

func newBench(t *testing.T, p *hw.Profile) *bench {
	t.Helper()
	clock := simtime.NewClock()
	m := hw.NewMachine(clock, p)
	return &bench{clock: clock, m: m, engine: NewEngine(clock, m)}
}

func (b *bench) bootWithVMs(t *testing.T, kind hv.Kind, n, vcpus, memGiB int) hv.Hypervisor {
	t.Helper()
	h, err := b.engine.BootHypervisor(kind)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		_, err := h.CreateVM(hv.Config{
			Name: vmName(i), VCPUs: vcpus, MemBytes: uint64(memGiB) << 30,
			HugePages: true, Seed: uint64(1000 + i), InPlaceCompatible: true,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func vmName(i int) string { return string(rune('a'+i)) + "-vm" }

// §5.2.1 headline: InPlaceTP Xen→KVM of a 1 vCPU / 1 GB VM has ~1.7 s of
// downtime on M1 and ~3.0 s on M2; total time ~2.15 s / ~3.56 s.
func TestFig6Anchors(t *testing.T) {
	cases := []struct {
		profile           *hw.Profile
		downtime, total   time.Duration
		downtimeTol, tTol time.Duration
	}{
		{hw.M1(), 1700 * time.Millisecond, 2150 * time.Millisecond, 200 * time.Millisecond, 250 * time.Millisecond},
		{hw.M2(), 3010 * time.Millisecond, 3560 * time.Millisecond, 300 * time.Millisecond, 350 * time.Millisecond},
	}
	for _, tc := range cases {
		b := newBench(t, tc.profile)
		src := b.bootWithVMs(t, hv.KindXen, 1, 1, 1)
		_, rep, err := b.engine.InPlace(src, hv.KindKVM, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if d := rep.Downtime - tc.downtime; d < -tc.downtimeTol || d > tc.downtimeTol {
			t.Errorf("%s downtime = %v, want %v ± %v", tc.profile.Name, rep.Downtime, tc.downtime, tc.downtimeTol)
		}
		if d := rep.Total - tc.total; d < -tc.tTol || d > tc.tTol {
			t.Errorf("%s total = %v, want %v ± %v", tc.profile.Name, rep.Total, tc.total, tc.tTol)
		}
		// Reboot dominates (69-71% of total in the paper).
		frac := float64(rep.Reboot) / float64(rep.Total)
		if frac < 0.55 || frac > 0.85 {
			t.Errorf("%s reboot fraction = %.2f, want ~0.7", tc.profile.Name, frac)
		}
		// Downtime = Translation + Reboot + Restoration.
		if rep.Downtime != rep.Translation+rep.Reboot+rep.Restoration {
			t.Errorf("%s downtime != sum of phases", tc.profile.Name)
		}
		if rep.NetworkDowntime != rep.Downtime+tc.profile.Cost.NICReinit {
			t.Errorf("%s network downtime wrong", tc.profile.Name)
		}
	}
}

// Fig. 10 anchor: KVM→Xen is several times slower because Xen boots two
// kernels; ~7.8 s downtime on M1.
func TestKVMToXenSlower(t *testing.T) {
	b := newBench(t, hw.M1())
	src := b.bootWithVMs(t, hv.KindKVM, 1, 1, 1)
	_, rep, err := b.engine.InPlace(src, hv.KindXen, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Downtime < 7*time.Second || rep.Downtime > 9*time.Second {
		t.Fatalf("KVM→Xen downtime = %v, want ~7.8s", rep.Downtime)
	}
	// Still far below the 30 s Azure maintenance bound the paper cites.
	if rep.Downtime > 30*time.Second {
		t.Fatal("downtime above the 30s acceptability bound")
	}
}

// The core correctness property: every byte every guest wrote survives
// InPlaceTP, the devices complete the pause/unplug protocol, and the VMs
// run on the new hypervisor.
func TestInPlacePreservesGuestState(t *testing.T) {
	b := newBench(t, hw.M1())
	src := b.bootWithVMs(t, hv.KindXen, 3, 2, 1)
	sums := map[string]uint64{}
	for _, vm := range src.VMs() {
		if err := vm.Guest.WriteWorkingSet(hw.GFN(10*int(vm.ID)), 300); err != nil {
			t.Fatal(err)
		}
		sum, err := vm.Space.ChecksumAll()
		if err != nil {
			t.Fatal(err)
		}
		sums[vm.Config.Name] = sum
	}
	dst, rep, err := b.engine.InPlace(src, hv.KindKVM, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if dst.Kind() != hv.KindKVM {
		t.Fatalf("target kind = %v", dst.Kind())
	}
	if len(rep.VMs) != 3 {
		t.Fatalf("transplanted %d VMs", len(rep.VMs))
	}
	if len(dst.VMs()) != 3 {
		t.Fatalf("%d VMs on target", len(dst.VMs()))
	}
	for _, vm := range dst.VMs() {
		if vm.Paused() {
			t.Fatalf("VM %q not resumed", vm.Config.Name)
		}
		if vm.Guest == nil {
			t.Fatalf("VM %q has no guest", vm.Config.Name)
		}
		if err := vm.Guest.Verify(); err != nil {
			t.Fatalf("guest state lost: %v", err)
		}
		if !vm.Guest.AllDriversRunning() {
			t.Fatalf("VM %q drivers not running", vm.Config.Name)
		}
		sum, err := vm.Space.ChecksumAll()
		if err != nil {
			t.Fatal(err)
		}
		if sum != sums[vm.Config.Name] {
			t.Fatalf("VM %q image changed across transplant", vm.Config.Name)
		}
		// The device protocol ran exactly once.
		pauses, resumes, rescans := vm.Guest.ProtocolCounters()
		if pauses != 2 || resumes != 2 || rescans != 1 {
			t.Fatalf("VM %q protocol counters %d/%d/%d", vm.Config.Name, pauses, resumes, rescans)
		}
	}
	// Ephemeral transplant memory was given back: only guest + HV state
	// remain.
	counts := b.m.Mem.CountByOwner()
	if counts[hw.OwnerPRAM] != 0 || counts[hw.OwnerKexecImage] != 0 {
		t.Fatalf("ephemeral frames leaked: %v", counts)
	}
}

// Transplanting back and forth (Xen→KVM→Xen) must also preserve state —
// the full heterogeneous round trip.
func TestRoundTripTransplant(t *testing.T) {
	b := newBench(t, hw.M1())
	src := b.bootWithVMs(t, hv.KindXen, 1, 2, 1)
	vm := src.VMs()[0]
	vm.Guest.WriteWorkingSet(5, 100)
	g := vm.Guest

	mid, _, err := b.engine.InPlace(src, hv.KindKVM, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := b.engine.InPlace(mid, hv.KindXen, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind() != hv.KindXen {
		t.Fatal("not back on Xen")
	}
	if err := g.Verify(); err != nil {
		t.Fatalf("guest state lost on round trip: %v", err)
	}
}

func TestInPlaceErrors(t *testing.T) {
	b := newBench(t, hw.M1())
	src := b.bootWithVMs(t, hv.KindXen, 1, 1, 1)
	if _, _, err := b.engine.InPlace(src, hv.KindXen, DefaultOptions()); err == nil {
		t.Fatal("same-kind transplant accepted")
	}
	// No VMs.
	b2 := newBench(t, hw.M1())
	empty, _ := b2.engine.BootHypervisor(hv.KindXen)
	if _, _, err := b2.engine.InPlace(empty, hv.KindKVM, DefaultOptions()); err == nil {
		t.Fatal("transplant with no VMs accepted")
	}
	// Wrong machine.
	b3 := newBench(t, hw.M1())
	if _, _, err := b3.engine.InPlace(src, hv.KindKVM, DefaultOptions()); err == nil {
		t.Fatal("cross-machine source accepted")
	}
	// Pre-paused VM.
	b4 := newBench(t, hw.M1())
	src4 := b4.bootWithVMs(t, hv.KindXen, 1, 1, 1)
	src4.Pause(src4.VMs()[0].ID)
	if _, _, err := b4.engine.InPlace(src4, hv.KindKVM, DefaultOptions()); err == nil {
		t.Fatal("paused VM accepted")
	}
}

// §4.2.5 ablations: each optimization must measurably reduce downtime.
func TestAblations(t *testing.T) {
	run := func(opts Options, n, memGiB int) *InPlaceReport {
		b := newBench(t, hw.M1())
		src := b.bootWithVMs(t, hv.KindXen, n, 1, memGiB)
		_, rep, err := b.engine.InPlace(src, hv.KindKVM, opts)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	full := DefaultOptions()

	noPrep := full
	noPrep.PrepareBeforePause = false
	if a, b := run(full, 2, 2), run(noPrep, 2, 2); b.Downtime <= a.Downtime {
		t.Errorf("prepare-before-pause saves nothing: %v vs %v", a.Downtime, b.Downtime)
	}

	noPar := full
	noPar.Parallel = false
	if a, b := run(full, 8, 1), run(noPar, 8, 1); b.Downtime <= a.Downtime {
		t.Errorf("parallelization saves nothing: %v vs %v", a.Downtime, b.Downtime)
	}

	noHuge := full
	noHuge.HugePages = false
	a, bb := run(full, 1, 2), run(noHuge, 1, 2)
	if bb.Downtime <= a.Downtime {
		t.Errorf("huge pages save nothing: %v vs %v", a.Downtime, bb.Downtime)
	}
	if bb.PRAMMetadataBytes <= a.PRAMMetadataBytes*10 {
		t.Errorf("split PRAM metadata not ≫: %d vs %d", bb.PRAMMetadataBytes, a.PRAMMetadataBytes)
	}

	noEarly := full
	noEarly.EarlyRestoration = false
	if a, b := run(full, 1, 1), run(noEarly, 1, 1); b.Downtime <= a.Downtime {
		t.Errorf("early restoration saves nothing: %v vs %v", a.Downtime, b.Downtime)
	}
}

// Fig. 7a: the number of vCPUs barely affects transplantation time.
func TestScalabilityVCPUsFlat(t *testing.T) {
	times := map[int]time.Duration{}
	for _, vcpus := range []int{1, 10} {
		b := newBench(t, hw.M1())
		src := b.bootWithVMs(t, hv.KindXen, 1, vcpus, 1)
		_, rep, err := b.engine.InPlace(src, hv.KindKVM, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		times[vcpus] = rep.Total
	}
	diff := times[10] - times[1]
	if diff < 0 {
		diff = -diff
	}
	if diff > 300*time.Millisecond {
		t.Fatalf("vCPU sweep moves total by %v, want ~flat", diff)
	}
}

// Fig. 7b/7c: memory size and VM count grow Reboot (sequential PRAM
// parse) but downtime stays within the paper's envelope (1.7-3.6 s M1).
func TestScalabilityEnvelopeM1(t *testing.T) {
	run := func(n, memGiB int) *InPlaceReport {
		b := newBench(t, hw.M1())
		src := b.bootWithVMs(t, hv.KindXen, n, 1, memGiB)
		_, rep, err := b.engine.InPlace(src, hv.KindKVM, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	small := run(1, 1)
	bigMem := run(1, 12)
	manyVMs := run(12, 1)
	if bigMem.Reboot <= small.Reboot {
		t.Fatal("reboot does not grow with memory")
	}
	if manyVMs.Reboot <= small.Reboot {
		t.Fatal("reboot does not grow with VM count")
	}
	for name, rep := range map[string]*InPlaceReport{"small": small, "bigMem": bigMem, "manyVMs": manyVMs} {
		if rep.Downtime < 1500*time.Millisecond || rep.Downtime > 3800*time.Millisecond {
			t.Fatalf("%s downtime = %v outside the 1.7-3.6s envelope", name, rep.Downtime)
		}
	}
}

// Fig. 7c vs 7f: PRAM construction scales worse on 4-core M1 than on
// 56-thread M2.
func TestPRAMParallelScaling(t *testing.T) {
	run := func(p *hw.Profile, n int) time.Duration {
		b := newBench(t, p)
		src := b.bootWithVMs(t, hv.KindXen, n, 1, 1)
		_, rep, err := b.engine.InPlace(src, hv.KindKVM, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return rep.PRAM
	}
	m1Growth := float64(run(hw.M1(), 12)) / float64(run(hw.M1(), 1))
	m2Growth := float64(run(hw.M2(), 12)) / float64(run(hw.M2(), 1))
	if m1Growth <= m2Growth {
		t.Fatalf("M1 PRAM growth %.2fx not worse than M2 %.2fx", m1Growth, m2Growth)
	}
}

func TestUISROverheadReported(t *testing.T) {
	b := newBench(t, hw.M1())
	src := b.bootWithVMs(t, hv.KindXen, 1, 1, 1)
	_, rep, err := b.engine.InPlace(src, hv.KindKVM, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 14: ~5 KB of UISR for 1 vCPU; 16 KB of PRAM for 1 GiB.
	if rep.UISRBytes < 4000 || rep.UISRBytes > 7000 {
		t.Fatalf("UISR bytes = %d, want ~5KB", rep.UISRBytes)
	}
	if rep.PRAMMetadataBytes < 16<<10 || rep.PRAMMetadataBytes > 24<<10 {
		t.Fatalf("PRAM metadata = %d, want ~16-20KB", rep.PRAMMetadataBytes)
	}
	if rep.VMs[0].UISRBytes != rep.UISRBytes {
		t.Fatal("per-VM UISR bytes inconsistent")
	}
}

func TestBootHypervisorUnknownKind(t *testing.T) {
	b := newBench(t, hw.M1())
	if _, err := b.engine.BootHypervisor(hv.Kind(77)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestTCBReport(t *testing.T) {
	total, tcb, userFrac := TCBTotals()
	if total != 14.6 {
		t.Fatalf("total KLOC = %v, want 14.6 (~15 per §4.4)", total)
	}
	if tcb != 8.5 {
		t.Fatalf("TCB KLOC = %v, want 8.5", tcb)
	}
	if userFrac < 0.70 || userFrac > 0.95 {
		t.Fatalf("userspace fraction = %v, want ~0.74 ('nearly 90%%' of non-hypervisor code)", userFrac)
	}
	if len(TCBReport()) != 4 {
		t.Fatal("TCB report rows wrong")
	}
}

// §4.2.3: a VM with a pass-through device transplants in place — the
// device is paused before the micro-reboot and resumed after, since the
// hardware itself does not change.
func TestInPlaceWithPassthroughDevice(t *testing.T) {
	b := newBench(t, hw.M1())
	src, err := b.engine.BootHypervisor(hv.KindXen)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := src.CreateVM(hv.Config{
		Name: "gpu-vm", VCPUs: 2, MemBytes: 1 << 30, HugePages: true,
		Seed: 5, InPlaceCompatible: true, PassthroughDevices: []string{"gpu0", "nvme0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	vm.Guest.WriteWorkingSet(0, 64)
	g := vm.Guest
	if g.Driver("gpu0") == nil || g.Driver("nvme0") == nil {
		t.Fatal("pass-through drivers not attached")
	}
	dst, _, err := b.engine.InPlace(src, hv.KindKVM, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
	if !g.AllDriversRunning() {
		t.Fatal("pass-through drivers not resumed")
	}
	// Each of the two pass-through + two emulated drivers paused and
	// resumed exactly once; the network driver was unplugged/rescanned.
	pauses, resumes, rescans := g.ProtocolCounters()
	if pauses != 4 || resumes != 4 || rescans != 1 {
		t.Fatalf("protocol counters %d/%d/%d, want 4/4/1", pauses, resumes, rescans)
	}
	if len(dst.VMs()) != 1 {
		t.Fatal("VM lost")
	}
}

// The trace records the Fig. 3 workflow in order, with the PRAM build
// before the pause when the optimization is on and after it when off.
func TestTraceRecordsWorkflow(t *testing.T) {
	b := newBench(t, hw.M1())
	b.engine.Trace = trace.New(b.clock)
	src := b.bootWithVMs(t, hv.KindXen, 2, 1, 1)
	if _, _, err := b.engine.InPlace(src, hv.KindKVM, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	tr := b.engine.Trace
	if err := tr.AssertOrder(
		trace.StepLoadImage, trace.StepPRAMBuild, trace.StepPause,
		trace.StepTranslate, trace.StepKexec, trace.StepBoot,
		trace.StepPRAMParse, trace.StepRestore, trace.StepAttachGuest,
		trace.StepResume, trace.StepCleanup,
	); err != nil {
		t.Fatal(err)
	}
	// Optimized: PRAM built before the pause.
	if tr.FirstIndex(trace.StepPRAMBuild) > tr.FirstIndex(trace.StepPause) {
		t.Fatal("PRAM build after pause despite PrepareBeforePause")
	}
	// One restore + one attach per VM.
	counts := map[string]int{}
	for _, s := range tr.Steps() {
		counts[s]++
	}
	if counts[trace.StepRestore] != 2 || counts[trace.StepAttachGuest] != 2 {
		t.Fatalf("restore/attach counts = %d/%d, want 2/2",
			counts[trace.StepRestore], counts[trace.StepAttachGuest])
	}

	// De-optimized: PRAM lands inside the pause window.
	b2 := newBench(t, hw.M1())
	b2.engine.Trace = trace.New(b2.clock)
	src2 := b2.bootWithVMs(t, hv.KindXen, 1, 1, 1)
	opts := DefaultOptions()
	opts.PrepareBeforePause = false
	if _, _, err := b2.engine.InPlace(src2, hv.KindKVM, opts); err != nil {
		t.Fatal(err)
	}
	tr2 := b2.engine.Trace
	if tr2.FirstIndex(trace.StepPRAMBuild) < tr2.FirstIndex(trace.StepPause) {
		t.Fatal("PRAM build before pause despite disabled optimization")
	}
}
