package core

import (
	"fmt"
	"reflect"
	"testing"

	"hypertp/internal/fault"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/obs"
	"hypertp/internal/par"
	rpt "hypertp/internal/report"
	"hypertp/internal/tpcache"
)

// pingPong runs n InPlace transplants alternating KVM↔Xen on one bench,
// verifying guest checksums survive every hop, and returns the final
// hypervisor plus the per-hop report strings.
func pingPong(t *testing.T, b *bench, src hv.Hypervisor, n int, opts Options) (hv.Hypervisor, []string) {
	t.Helper()
	pre := checksumVMs(t, src.VMs())
	reports := make([]string, 0, n)
	cur := src
	for hop := 0; hop < n; hop++ {
		target := hv.KindKVM
		if cur.Kind() == hv.KindKVM {
			target = hv.KindXen
		}
		dst, rep, err := b.engine.InPlace(cur, target, opts)
		if err != nil {
			t.Fatalf("hop %d: %v", hop, err)
		}
		if got := checksumVMs(t, dst.VMs()); !reflect.DeepEqual(got, pre) {
			t.Fatalf("hop %d: guest checksums diverged", hop)
		}
		// The cache counters are the one part of a report allowed to
		// differ between cold and cached runs — zero them so the identity
		// comparison covers everything else.
		flat := *rep
		flat.CacheHits, flat.CacheMisses, flat.CacheWarmStarts = 0, 0, 0
		reports = append(reports, fmt.Sprintf("%+v", flat))
		cur = dst
	}
	return cur, reports
}

// TestCacheConvergesToHits: the fingerprint chain must reach its fixed
// point under steady-state ping-pong — after a few cycles every
// translation lookup hits, so the warm benchmark's 10x claim rests on
// real cache behavior, not on first-run misses forever.
func TestCacheConvergesToHits(t *testing.T) {
	b := newBench(t, hw.M1())
	src := bootSmallVMs(t, b, hv.KindXen, 2)
	opts := DefaultOptions()
	opts.Cache = tpcache.New()

	pingPong(t, b, src, 10, opts)

	st := opts.Cache.Stats()
	t.Logf("cache stats after 10 hops: %+v (hit ratio %.2f)", st, st.HitRatio())
	if st.Hits == 0 {
		t.Fatalf("no translation-cache hits after 10 ping-pong hops: %+v", st)
	}
	if st.Misses == 0 {
		t.Fatalf("cold path never ran: %+v", st)
	}
	if st.Stale != 0 || st.WarmStarts != 0 {
		t.Fatalf("unexpected stale/warm counters without faults or a warm pool: %+v", st)
	}
}

// TestCachedTransplantByteIdentity is the determinism gate for the whole
// cache subsystem: a cached run must be indistinguishable from a cold
// run in everything the simulation can observe — reports, guest
// checksums, span trees — at any worker count. Only wall-clock time and
// the cache counters may differ.
func TestCachedTransplantByteIdentity(t *testing.T) {
	defer par.SetWorkers(0)
	type run struct {
		reports []string
		sums    map[string]uint64
		spans   map[string]int
	}
	grab := func(workers int, cached bool) run {
		par.SetWorkers(workers)
		b := newBench(t, hw.M1())
		rec := obs.NewRecorder(b.clock)
		b.engine.Obs = rec
		src := bootSmallVMs(t, b, hv.KindXen, 2)
		opts := DefaultOptions()
		if cached {
			opts.Cache = tpcache.New()
		}
		final, reports := pingPong(t, b, src, 8, opts)
		if cached && opts.Cache.Stats().Hits == 0 {
			t.Fatal("cached run never hit: identity check would be vacuous")
		}
		return run{reports, checksumVMs(t, final.VMs()), spanNames(rec)}
	}
	cold := grab(1, false)
	for _, workers := range []int{1, 8} {
		warm := grab(workers, true)
		if !reflect.DeepEqual(cold.reports, warm.reports) {
			t.Fatalf("-workers %d: cached reports differ from cold:\n%v\nvs\n%v",
				workers, cold.reports, warm.reports)
		}
		if !reflect.DeepEqual(cold.sums, warm.sums) {
			t.Fatalf("-workers %d: cached guest checksums differ from cold", workers)
		}
		if !reflect.DeepEqual(cold.spans, warm.spans) {
			t.Fatalf("-workers %d: cached span tree differs from cold:\n%v\nvs\n%v",
				workers, cold.spans, warm.spans)
		}
	}
}

// TestCacheStalePoisonFallback: fault injection at cache.stale poisons a
// hit, and the engine must fall back to the cold path — absorbing the
// fault, preserving every guest byte, and leaving the cache to self-heal
// on the next cold store. A stale cache can cost time, never
// correctness.
func TestCacheStalePoisonFallback(t *testing.T) {
	b := newBench(t, hw.M1())
	src := bootSmallVMs(t, b, hv.KindXen, 2)
	opts := DefaultOptions()
	opts.Cache = tpcache.New()

	// Prime until lookups hit, so the next hop is guaranteed to arm the
	// cache.stale site.
	cur := src
	primed := false
	for hop := 0; hop < 12; hop++ {
		cur, _ = pingPong(t, b, cur, 1, opts)
		if opts.Cache.Stats().Hits > 0 {
			primed = true
			break
		}
	}
	if !primed {
		t.Fatalf("cache never converged to a hit: %+v", opts.Cache.Stats())
	}
	pre := checksumVMs(t, cur.VMs())

	target := hv.KindKVM
	if cur.Kind() == hv.KindKVM {
		target = hv.KindXen
	}
	plan := fault.NewPlan(1, 0).ForceAt(fault.SiteCacheStale, 1).SetClock(b.clock)
	b.engine.Fault = plan
	dst, rep, err := b.engine.InPlace(cur, target, opts)
	if err != nil {
		t.Fatalf("poisoned transplant failed outright: %v", err)
	}
	if rep.Outcome != rpt.OutcomeRecovered || rep.Faults < 1 {
		t.Fatalf("outcome = %s faults = %d, want recovered with >=1 absorbed fault", rep.Outcome, rep.Faults)
	}
	if len(plan.Shots()) != 1 {
		t.Fatalf("shots = %v, want exactly one cache.stale shot", plan.Shots())
	}
	if got := checksumVMs(t, dst.VMs()); !reflect.DeepEqual(got, pre) {
		t.Fatal("guest checksums diverged across poisoned-cache fallback")
	}
	st := opts.Cache.Stats()
	if st.Stale != 1 {
		t.Fatalf("stale count = %d, want 1: %+v", st.Stale, st)
	}

	// Self-heal: with the fault disarmed, the cold store from the
	// poisoned hop re-populated the entry, so hits resume.
	b.engine.Fault = fault.NewPlan(1, 0).SetClock(b.clock)
	preHits := st.Hits
	if _, _ = pingPong(t, b, dst, 2, opts); opts.Cache.Stats().Hits <= preHits {
		t.Fatalf("cache did not self-heal after poison: %+v", opts.Cache.Stats())
	}
}
