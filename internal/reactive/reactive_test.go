package reactive

import (
	"fmt"
	"testing"
	"time"

	"hypertp/internal/obs"
	"hypertp/internal/par"
	"hypertp/internal/simtime"
)

func TestDetectionTimeClosedForm(t *testing.T) {
	d := NewDetector(ProbeConfig{Interval: 100 * time.Millisecond, MissThreshold: 3, Seed: 42})
	phase := d.Phase("host-0")
	if phase < 0 || phase >= 100*time.Millisecond {
		t.Fatalf("phase = %v, want in [0, interval)", phase)
	}

	// A crash long before the first probe is declared at the third tick.
	if got, want := d.DetectionTime("host-0", 0), phase+200*time.Millisecond; phase > 0 && got != want {
		t.Fatalf("detect(0) = %v, want %v", got, want)
	}
	// A crash exactly on a probe tick misses that probe.
	tick := phase + 5*100*time.Millisecond
	if got, want := d.DetectionTime("host-0", tick), tick+200*time.Millisecond; got != want {
		t.Fatalf("detect(on-tick) = %v, want %v", got, want)
	}
	// A crash just after a tick waits a full interval for the first miss.
	if got, want := d.DetectionTime("host-0", tick+1), tick+100*time.Millisecond+200*time.Millisecond; got != want {
		t.Fatalf("detect(after-tick) = %v, want %v", got, want)
	}
}

func TestDetectionLatencyBounds(t *testing.T) {
	cfg := ProbeConfig{Interval: 250 * time.Millisecond, MissThreshold: 4, Seed: 7}
	d := NewDetector(cfg)
	lo := time.Duration(cfg.MissThreshold-1) * cfg.Interval
	hi := cfg.MaxLatency()
	for h := 0; h < 50; h++ {
		host := fmt.Sprintf("host-%03d", h)
		for _, at := range []time.Duration{0, 13 * time.Millisecond, time.Second, 17 * time.Second} {
			det := d.DetectionTime(host, at)
			lat := det - at
			if lat < lo || lat > hi {
				t.Fatalf("host %s crash at %v: latency %v outside [%v, %v]", host, at, lat, lo, hi)
			}
		}
	}
}

// TestDetectorDeterminism pins the schedule as a pure function of (seed,
// host, config): same inputs, byte-identical latencies, regardless of
// the worker count and of how many other hosts were observed.
func TestDetectorDeterminism(t *testing.T) {
	defer par.SetWorkers(0)
	grab := func(workers int) string {
		par.SetWorkers(workers)
		d := NewDetector(ProbeConfig{Interval: 200 * time.Millisecond, MissThreshold: 3, Seed: 20210426})
		out := ""
		for h := 0; h < 16; h++ {
			ev := d.Observe(fmt.Sprintf("host-%02d", h), time.Duration(h)*137*time.Millisecond, "injected", h%3 == 0)
			out += fmt.Sprintf("%s %v %v\n", ev.Host, ev.CrashedAt, ev.DetectedAt)
		}
		return out
	}
	one := grab(1)
	eight := grab(8)
	if one != eight {
		t.Fatalf("detection schedule differs between -workers 1 and 8:\n%s\nvs\n%s", one, eight)
	}
	if again := grab(8); again != eight {
		t.Fatal("identical wide runs differ")
	}
}

// TestDetectorPinnedSchedule is the golden anchor: a fixed (seed, host)
// pair must keep its phase forever, or every recorded soak and SLO
// timeline silently shifts.
func TestDetectorPinnedSchedule(t *testing.T) {
	d := NewDetector(ProbeConfig{Interval: 200 * time.Millisecond, MissThreshold: 3, Seed: 1})
	ev := d.Observe("host-00", time.Second, "pinned", false)
	d2 := NewDetector(ProbeConfig{Interval: 200 * time.Millisecond, MissThreshold: 3, Seed: 1})
	if d2.DetectionTime("host-00", time.Second) != ev.DetectedAt {
		t.Fatal("detection time not reproducible from a fresh detector")
	}
	if ev.Latency() < 400*time.Millisecond || ev.Latency() > 600*time.Millisecond {
		t.Fatalf("latency = %v outside the (threshold-1, threshold]·interval band", ev.Latency())
	}
	// Different seeds must spread phases (not all hosts in lockstep).
	spread := false
	for seed := uint64(2); seed < 12; seed++ {
		alt := NewDetector(ProbeConfig{Interval: 200 * time.Millisecond, MissThreshold: 3, Seed: seed})
		if alt.Phase("host-00") != d.Phase("host-00") {
			spread = true
			break
		}
	}
	if !spread {
		t.Fatal("phase ignores the seed")
	}
}

func TestDetectorSubscribeAndSeries(t *testing.T) {
	clock := simtime.NewClock()
	rec := obs.NewRecorder(clock)
	d := NewDetector(DefaultProbeConfig()).SetRecorder(rec)
	var got []Event
	d.Subscribe(func(ev Event) { got = append(got, ev) })

	// Observe out of detection order: the series must still be
	// time-ordered.
	d.Observe("host-b", 3*time.Second, "panic", false)
	d.Observe("host-a", time.Second, "hang", true)
	if len(got) != 2 || got[0].Host != "host-b" || !got[1].Hung {
		t.Fatalf("events = %+v", got)
	}
	s := d.LatencySeries()
	if len(s.Points) != 2 || s.Points[0].T > s.Points[1].T {
		t.Fatalf("series not time-ordered: %+v", s.Points)
	}
	if sum := d.LatencySummary(); sum.Count != 2 || sum.Max > DefaultProbeConfig().MaxLatency().Seconds() {
		t.Fatalf("summary = %+v", sum)
	}
	if len(d.Events()) != 2 {
		t.Fatalf("events = %d", len(d.Events()))
	}
}

func TestProbeConfigDefaults(t *testing.T) {
	var zero ProbeConfig
	d := NewDetector(zero)
	cfg := d.Config()
	if cfg.Interval != DefaultProbeConfig().Interval || cfg.MissThreshold != 1 {
		t.Fatalf("resolved config = %+v", cfg)
	}
	if zero.MaxLatency() != DefaultProbeConfig().Interval {
		t.Fatalf("zero MaxLatency = %v", zero.MaxLatency())
	}
}
