// Package reactive is the failure-detection half of crash-triggered
// hypervisor recovery: a virtual-time heartbeat model that turns "host h
// crashed at time t" into "the control plane noticed at time t+Δ", with
// Δ a deterministic function of the probe configuration and the host's
// phase in the probe schedule.
//
// The detector is analytic, not polled. Every host's heartbeat probes
// tick at phase(host) + k·Interval on the shared virtual clock; a crash
// stops the heartbeats, the first probe at or after the crash misses,
// and death is declared after MissThreshold consecutive misses. Because
// the schedule is a pure function of (seed, host name, config), the
// detection latency for any crash is computed in closed form — no
// background goroutines, no wall-clock, and byte-identical results for
// any worker count.
package reactive

import (
	"sort"
	"sync"
	"time"

	"hypertp/internal/metrics"
	"hypertp/internal/obs"
)

// ProbeConfig parameterizes the heartbeat model.
type ProbeConfig struct {
	// Interval is the probe period. Non-positive takes the default.
	Interval time.Duration
	// MissThreshold is how many consecutive missed probes declare the
	// host dead. Values below 1 are treated as 1 (first miss kills).
	MissThreshold int
	// Seed randomizes each host's phase in the probe schedule, modeling
	// unsynchronized per-host heartbeat timers. Two detectors with the
	// same seed assign every host the same phase.
	Seed uint64
}

// DefaultProbeConfig is the fleet default: 200 ms probes, dead after 3
// consecutive misses — worst-case detection latency of 600 ms, well
// under a single emergency transplant's duration.
func DefaultProbeConfig() ProbeConfig {
	return ProbeConfig{Interval: 200 * time.Millisecond, MissThreshold: 3}
}

func (c ProbeConfig) interval() time.Duration {
	if c.Interval <= 0 {
		return DefaultProbeConfig().Interval
	}
	return c.Interval
}

func (c ProbeConfig) threshold() int {
	if c.MissThreshold < 1 {
		return 1
	}
	return c.MissThreshold
}

// MaxLatency is the worst-case detection latency under this config: a
// crash just after a successful probe waits a full interval for the
// first miss, then threshold-1 more intervals for the declaration.
func (c ProbeConfig) MaxLatency() time.Duration {
	return time.Duration(c.threshold()) * c.interval()
}

// Event is one detected hypervisor failure.
type Event struct {
	// Host names the crashed host.
	Host string
	// Reason is the failure cause recorded by the crash model.
	Reason string
	// Hung distinguishes a control-plane wedge (needs fencing before
	// salvage) from a clean fail-stop.
	Hung bool
	// CrashedAt is the virtual time the hypervisor actually failed.
	CrashedAt time.Duration
	// DetectedAt is the virtual time the heartbeat monitor declared it
	// dead: the MissThreshold-th missed probe tick.
	DetectedAt time.Duration
}

// Latency is the crash-to-detection window — unplanned outage time that
// accrues before recovery can even start.
func (e Event) Latency() time.Duration { return e.DetectedAt - e.CrashedAt }

// Detector converts crash times into detection events and keeps the
// detection-latency record for MTTR accounting.
type Detector struct {
	cfg ProbeConfig

	mu       sync.Mutex
	events   []Event
	handlers []func(Event)
	rec      *obs.Recorder
}

// NewDetector creates a detector with the given probe configuration.
func NewDetector(cfg ProbeConfig) *Detector {
	return &Detector{cfg: cfg}
}

// Config returns the probe configuration in effect (defaults resolved).
func (d *Detector) Config() ProbeConfig {
	return ProbeConfig{Interval: d.cfg.interval(), MissThreshold: d.cfg.threshold(), Seed: d.cfg.Seed}
}

// SetRecorder wires an observability recorder; each detection then lands
// in the "reactive.detect_latency_s" histogram.
func (d *Detector) SetRecorder(rec *obs.Recorder) *Detector {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rec = rec
	return d
}

// Subscribe registers a handler invoked synchronously, in subscription
// order, for every observed failure. The fleet orchestrator subscribes
// its emergency-transplant trigger here.
func (d *Detector) Subscribe(fn func(Event)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.handlers = append(d.handlers, fn)
}

// Phase is the host's fixed offset in the probe schedule, in [0,
// Interval): a pure function of (seed, host name), stable across
// detectors and runs.
func (d *Detector) Phase(host string) time.Duration {
	iv := d.cfg.interval()
	h := fnv64(host)
	return time.Duration(splitmix64(d.cfg.Seed^h) % uint64(iv))
}

// DetectionTime is the closed form of the heartbeat model: the virtual
// time at which a crash at crashedAt on the given host is declared.
// Probes tick at phase + k·Interval; the first probe at or after the
// crash misses (a heartbeat that stopped at the probe instant is
// already gone), and the threshold-th consecutive miss declares death.
func (d *Detector) DetectionTime(host string, crashedAt time.Duration) time.Duration {
	iv := d.cfg.interval()
	phase := d.Phase(host)
	firstMiss := phase
	if crashedAt > phase {
		k := (crashedAt - phase + iv - 1) / iv
		firstMiss = phase + k*iv
	}
	return firstMiss + time.Duration(d.cfg.threshold()-1)*iv
}

// Observe records that the given host's hypervisor failed at crashedAt,
// computes when the monitor declares it dead, notifies subscribers, and
// returns the event. Observe is the bridge from the crash model (fault
// injection, chaos ops) into the reactive control plane.
func (d *Detector) Observe(host string, crashedAt time.Duration, reason string, hung bool) Event {
	ev := Event{
		Host: host, Reason: reason, Hung: hung,
		CrashedAt:  crashedAt,
		DetectedAt: d.DetectionTime(host, crashedAt),
	}
	d.mu.Lock()
	d.events = append(d.events, ev)
	handlers := append([]func(Event){}, d.handlers...)
	rec := d.rec
	d.mu.Unlock()
	if rec != nil {
		rec.Metrics().Histogram("reactive.detect_latency_s", "s",
			obs.ExpBuckets(1e-3, 2, 12)).Observe(ev.Latency().Seconds())
		rec.Metrics().Counter("reactive.crashes_detected", "crashes").Add(1)
	}
	for _, fn := range handlers {
		fn(ev)
	}
	return ev
}

// Events returns every observed failure in observation order.
func (d *Detector) Events() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Event(nil), d.events...)
}

// LatencySeries returns the detection latencies as a time series ordered
// by detection time — the detector's contribution to the SLO timeline.
func (d *Detector) LatencySeries() *metrics.Series {
	evs := d.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].DetectedAt < evs[j].DetectedAt })
	s := &metrics.Series{Name: "detect_latency", Unit: "s"}
	for _, ev := range evs {
		s.Add(ev.DetectedAt, ev.Latency().Seconds())
	}
	return s
}

// LatencySummary is the percentile digest of all detection latencies in
// seconds.
func (d *Detector) LatencySummary() metrics.Summary {
	evs := d.Events()
	vs := make([]float64, len(evs))
	for i, ev := range evs {
		vs[i] = ev.Latency().Seconds()
	}
	return metrics.Summarize(vs)
}

// fnv64 is FNV-1a, the same host-name hash family the fault plan uses,
// so phase assignment shares its independence properties.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// splitmix64 finalizes the seed/hash mix into a well-distributed draw.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
