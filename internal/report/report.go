// Package report is the shared result vocabulary of the transplant
// stack. The three operation reports — core.InPlaceReport,
// migration.Report, cluster.Result — grew up independently; this
// package gives them one Summary shape and one Outcome scale so
// callers (and the public hypertp API) can treat any transplant result
// uniformly without losing the operation-specific detail each concrete
// type still carries.
package report

import "time"

// Outcome is the terminal state of a transplant-class operation.
type Outcome string

const (
	// OutcomeCompleted: the operation finished on the first attempt with
	// no recovery involved.
	OutcomeCompleted Outcome = "completed"
	// OutcomeRecovered: the operation finished, but only after riding
	// through at least one fault (retry, crash-recovery restore, ...).
	OutcomeRecovered Outcome = "recovered"
	// OutcomeRolledBack: the operation was abandoned and fully undone —
	// every VM still runs on the source with its state intact.
	OutcomeRolledBack Outcome = "rolled-back"
	// OutcomeDegraded: a fleet-level operation completed partially —
	// failed hosts were quarantined and their work re-planned, and the
	// report says which.
	OutcomeDegraded Outcome = "degraded"
	// OutcomeCrashed: the source hypervisor fail-stopped mid-operation.
	// The operation was abandoned with every VM frozen in place — not
	// rolled back (there is no hypervisor left to resume them), not
	// lost (guest memory and VM_i State survive) — and the emergency
	// recovery path owns the host from here.
	OutcomeCrashed Outcome = "crashed"
)

// Summary is the operation-independent view of a report.
type Summary struct {
	// Kind names the operation: "inplace", "migration", "cluster".
	Kind string
	// Outcome is the terminal state.
	Outcome Outcome
	// Attempts is how many times the operation (or its failing stage)
	// ran, ≥ 1.
	Attempts int
	// Downtime is the virtual time during which affected VMs ran
	// nowhere.
	Downtime time.Duration
	// VirtualElapsed is the operation's total virtual duration.
	VirtualElapsed time.Duration
	// Faults is the number of injected faults the operation absorbed.
	Faults int
	// CacheHits, CacheMisses, and CacheWarmStarts count the transplant
	// cache lookups the operation made (all zero when caching was
	// disabled). They describe the cache, not the transplant: every
	// other field is identical with caching on or off.
	CacheHits, CacheMisses, CacheWarmStarts uint64
}

// Report is implemented by every operation report in the stack.
type Report interface {
	Summary() Summary
}
