package vulndb

import "testing"

// Table 1 anchor: every per-year cell must match the paper exactly.
func TestTable1CountsExact(t *testing.T) {
	db := Load()
	want := map[int][6]int{
		2013: {3, 38, 3, 21, 0, 0},
		2014: {4, 27, 1, 12, 0, 0},
		2015: {11, 20, 1, 4, 1, 2},
		2016: {6, 12, 3, 3, 0, 0},
		2017: {17, 38, 1, 7, 0, 0},
		2018: {7, 21, 2, 5, 0, 0},
		2019: {7, 15, 2, 4, 0, 0},
	}
	for year, row := range want {
		got := [6]int{
			db.Count(year, "xen", SeverityCritical),
			db.Count(year, "xen", SeverityMedium),
			db.Count(year, "kvm", SeverityCritical),
			db.Count(year, "kvm", SeverityMedium),
			db.Count(year, "common", SeverityCritical),
			db.Count(year, "common", SeverityMedium),
		}
		if got != row {
			t.Errorf("%d: counts = %v, want %v", year, got, row)
		}
	}
}

func TestTable1Totals(t *testing.T) {
	db := Load()
	var xenCrit, kvmCrit, comCrit, comMed int
	for y := FirstYear; y <= LastYear; y++ {
		xenCrit += db.Count(y, "xen", SeverityCritical)
		kvmCrit += db.Count(y, "kvm", SeverityCritical)
		comCrit += db.Count(y, "common", SeverityCritical)
		comMed += db.Count(y, "common", SeverityMedium)
	}
	if xenCrit != 55 {
		t.Errorf("Xen critical total = %d, want 55", xenCrit)
	}
	if kvmCrit != 13 {
		t.Errorf("KVM critical total = %d, want 13", kvmCrit)
	}
	if comCrit != 1 {
		t.Errorf("common critical total = %d, want 1", comCrit)
	}
	if comMed != 2 {
		t.Errorf("common medium total = %d, want 2", comMed)
	}
}

func TestSeverityOf(t *testing.T) {
	cases := []struct {
		cvss float64
		want Severity
	}{
		{9.3, SeverityCritical}, {7.0, SeverityCritical},
		{6.9, SeverityMedium}, {4.0, SeverityMedium},
		{3.9, 0}, {0, 0},
	}
	for _, c := range cases {
		if got := SeverityOf(c.cvss); got != c.want {
			t.Errorf("SeverityOf(%v) = %v, want %v", c.cvss, got, c.want)
		}
	}
	if SeverityCritical.String() != "critical" || SeverityMedium.String() != "medium" {
		t.Fatal("severity strings wrong")
	}
}

// §2.2 anchors: 24 tracked KVM vulnerabilities, average window 71 days,
// ≥60% above 60 days, max 180 (CVE-2017-12188), min 8 (CVE-2013-0311).
func TestKVMWindowStats(t *testing.T) {
	s := Load().KVMWindowStats()
	if s.Tracked != 24 {
		t.Fatalf("tracked = %d, want 24", s.Tracked)
	}
	if s.AverageDays < 70 || s.AverageDays > 72 {
		t.Fatalf("average = %.1f days, want ~71", s.AverageDays)
	}
	if s.Over60Frac < 0.60 {
		t.Fatalf("over-60 fraction = %.2f, want ≥ 0.60", s.Over60Frac)
	}
	if s.MaxDays != 180 || s.MaxID != "CVE-2017-12188" {
		t.Fatalf("max = %d (%s), want 180 (CVE-2017-12188)", s.MaxDays, s.MaxID)
	}
	if s.MinDays != 8 || s.MinID != "CVE-2013-0311" {
		t.Fatalf("min = %d (%s), want 8 (CVE-2013-0311)", s.MinDays, s.MinID)
	}
}

func TestNamedCVEs(t *testing.T) {
	db := Load()
	venom, ok := db.Lookup("CVE-2015-3456")
	if !ok {
		t.Fatal("VENOM missing")
	}
	if !venom.Affected("xen") || !venom.Affected("kvm") {
		t.Fatal("VENOM must affect both hypervisors")
	}
	if venom.Severity() != SeverityCritical || venom.Category != CatQEMU {
		t.Fatal("VENOM classification wrong")
	}
	xsa, ok := db.Lookup("CVE-2016-6258")
	if !ok || xsa.WindowDays != 7 {
		t.Fatal("CVE-2016-6258 7-day window missing")
	}
	if _, ok := db.Lookup("CVE-2015-8104"); !ok {
		t.Fatal("CVE-2015-8104 missing")
	}
	if _, ok := db.Lookup("CVE-2015-5307"); !ok {
		t.Fatal("CVE-2015-5307 missing")
	}
}

func TestCommonVulnerabilities(t *testing.T) {
	db := Load()
	common := db.CommonVulnerabilities()
	// VENOM + the two medium DoS flaws; Spectre/Meltdown are CPU-level
	// and excluded.
	if len(common) != 3 {
		t.Fatalf("common vulnerabilities = %d, want 3", len(common))
	}
	crit := 0
	for _, r := range common {
		if r.Severity() == SeverityCritical {
			crit++
		}
	}
	if crit != 1 {
		t.Fatalf("common critical = %d, want 1 (VENOM)", crit)
	}
}

func TestSpectreMeltdownExcludedFromTable(t *testing.T) {
	db := Load()
	// They exist in the DB…
	if _, ok := db.Lookup("CVE-2017-5754"); !ok {
		t.Fatal("Meltdown missing")
	}
	// …but 2018 shows zero common entries, as in Table 1.
	if db.Count(2018, "common", SeverityMedium) != 0 {
		t.Fatal("CPU-level flaws leaked into Table 1 counts")
	}
}

func TestSelectTarget(t *testing.T) {
	db := Load()
	pool := []string{"xen", "kvm"}

	// A Xen-only critical flaw: KVM is a valid target.
	target, err := db.SelectTarget("xen", []string{"CVE-2016-6258"}, pool)
	if err != nil || target != "kvm" {
		t.Fatalf("target = %q, %v", target, err)
	}
	// VENOM affects both: no target exists.
	if _, err := db.SelectTarget("xen", []string{"CVE-2015-3456"}, pool); err == nil {
		t.Fatal("VENOM transplant target found — policy must refuse")
	}
	// Unknown id.
	if _, err := db.SelectTarget("xen", []string{"CVE-9999-0000"}, pool); err == nil {
		t.Fatal("unknown CVE accepted")
	}
	// A bigger pool rescues the common-flaw case.
	target, err = db.SelectTarget("xen", []string{"CVE-2015-3456"}, []string{"xen", "kvm", "hyper-v"})
	if err != nil || target != "hyper-v" {
		t.Fatalf("pool-of-3 target = %q, %v", target, err)
	}
}

// Property: SelectTarget never returns a hypervisor affected by any
// active flaw.
func TestSelectTargetNeverUnsafe(t *testing.T) {
	db := Load()
	pool := []string{"xen", "kvm"}
	for _, r := range db.All() {
		target, err := db.SelectTarget("xen", []string{r.ID}, pool)
		if err != nil {
			continue
		}
		if rec, _ := db.Lookup(r.ID); rec.Affected(target) {
			t.Fatalf("policy chose %q for %s which affects it", target, r.ID)
		}
	}
}

func TestTransplantWorthwhile(t *testing.T) {
	db := Load()
	pool := []string{"xen", "kvm"}
	// Critical Xen-only flaw on a Xen host: transplant to KVM.
	ok, target := db.TransplantWorthwhile("CVE-2016-6258", "xen", pool)
	if !ok || target != "kvm" {
		t.Fatalf("worthwhile = %v/%q", ok, target)
	}
	// Medium flaw: HyperTP is reserved for critical ones.
	ok, _ = db.TransplantWorthwhile("CVE-2015-8104", "xen", pool)
	if ok {
		t.Fatal("medium flaw triggered transplant")
	}
	// Flaw not affecting the current hypervisor.
	ok, _ = db.TransplantWorthwhile("CVE-2017-12188", "xen", pool)
	if ok {
		t.Fatal("irrelevant flaw triggered transplant")
	}
	// Common critical flaw: no safe target.
	ok, _ = db.TransplantWorthwhile("CVE-2015-3456", "xen", pool)
	if ok {
		t.Fatal("VENOM triggered transplant with no safe target")
	}
}

// The motivating statistic: transplants needed per year stay low because
// critical vulnerabilities rarely hit both hypervisors at once.
func TestLowCommonRate(t *testing.T) {
	db := Load()
	totalCrit := 0
	for y := FirstYear; y <= LastYear; y++ {
		totalCrit += db.Count(y, "xen", SeverityCritical) +
			db.Count(y, "kvm", SeverityCritical) +
			db.Count(y, "common", SeverityCritical)
	}
	commonCrit := 0
	for _, r := range db.CommonVulnerabilities() {
		if r.Severity() == SeverityCritical {
			commonCrit++
		}
	}
	if frac := float64(commonCrit) / float64(totalCrit); frac > 0.02 {
		t.Fatalf("common critical fraction = %.3f, want ≤ 0.02 (1/69)", frac)
	}
}

func TestRecordAffected(t *testing.T) {
	r := Record{Affects: []string{"xen"}}
	if !r.Affected("xen") || r.Affected("kvm") {
		t.Fatal("Affected wrong")
	}
}
