// Package vulndb reproduces the paper's vulnerability study (§2): a
// database of Xen and KVM vulnerabilities 2013-2019 whose per-year counts
// match Table 1, the KVM vulnerability-window statistics of §2.2, and the
// transplant decision policy built on them — given an active flaw, find a
// replacement hypervisor that does not share it.
//
// The per-year counts, category distributions, common vulnerabilities and
// the named CVEs (VENOM, CVE-2015-8104/5307, CVE-2016-6258,
// CVE-2017-12188, CVE-2013-0311, Spectre/Meltdown) are data from the
// paper; the remaining records are synthetic placeholders that make the
// aggregate counts exact. Note: the paper's Table 1 "Total" row for Xen
// medium vulnerabilities (136) is inconsistent with its own per-year
// numbers (which sum to 171); this reproduction follows the per-year
// numbers.
package vulndb

import (
	"fmt"
	"sort"
	"time"
)

// Severity is the CVSS v2 band used by the paper.
type Severity uint8

const (
	// SeverityMedium is CVSS v2 in [4, 7).
	SeverityMedium Severity = iota + 1
	// SeverityCritical is CVSS v2 ≥ 7 — the band HyperTP is reserved
	// for.
	SeverityCritical
)

func (s Severity) String() string {
	switch s {
	case SeverityMedium:
		return "medium"
	case SeverityCritical:
		return "critical"
	default:
		return fmt.Sprintf("severity(%d)", uint8(s))
	}
}

// SeverityOf classifies a CVSS v2 base score per the paper's thresholds
// (§2: critical ≥ 7, medium ≥ 4 and < 7). Scores below 4 are out of
// scope and classify as 0.
func SeverityOf(cvss float64) Severity {
	switch {
	case cvss >= 7:
		return SeverityCritical
	case cvss >= 4:
		return SeverityMedium
	default:
		return 0
	}
}

// Category is the root-cause classification of §2.1.
type Category string

// Categories used in the §2.1 breakdown.
const (
	CatPVMechanisms Category = "pv-mechanisms" // event channels, hypercalls
	CatResourceMgmt Category = "resource-management"
	CatHardware     Category = "hardware-mishandling" // e.g. VT-x state
	CatToolstack    Category = "toolstack"            // libxl
	CatQEMU         Category = "qemu"
	CatIoctl        Category = "ioctls"
	CatHardwareCPU  Category = "cpu-hardware" // Spectre/Meltdown class
)

// Record is one vulnerability.
type Record struct {
	ID       string
	Year     int
	CVSS     float64
	Category Category
	// Affects lists the hypervisors subject to the flaw ("xen", "kvm").
	Affects []string
	// WindowDays is the vulnerability window (report → patch release)
	// where known, else 0.
	WindowDays int
	// Description is free text for the named real-world entries.
	Description string
}

// Affected reports whether the record affects the named hypervisor.
func (r *Record) Affected(hv string) bool {
	for _, a := range r.Affects {
		if a == hv {
			return true
		}
	}
	return false
}

// Severity returns the record's CVSS band.
func (r *Record) Severity() Severity { return SeverityOf(r.CVSS) }

// RemediationWindow returns the virtual-time SLO budget for closing
// this record's per-host vulnerability windows: how long after
// disclosure a host may keep running an affected hypervisor. Critical
// flaws get the tight fleet-response budget (the paper's point is that
// transplant makes minutes-scale response feasible); medium flaws get a
// maintenance-window budget.
func (r *Record) RemediationWindow() time.Duration {
	if r.Severity() == SeverityCritical {
		return 30 * time.Minute
	}
	return 4 * time.Hour
}

// Database is the loaded vulnerability set.
type Database struct {
	records []Record
}

// Years covered by the study.
const (
	FirstYear = 2013
	LastYear  = 2019
)

// table1 holds the paper's Table 1 per-year counts.
// Index: year-FirstYear → {xenCrit, xenMed, kvmCrit, kvmMed, commonCrit, commonMed}.
var table1 = [7][6]int{
	{3, 38, 3, 21, 0, 0}, // 2013
	{4, 27, 1, 12, 0, 0}, // 2014
	{11, 20, 1, 4, 1, 2}, // 2015
	{6, 12, 3, 3, 0, 0},  // 2016
	{17, 38, 1, 7, 0, 0}, // 2017
	{7, 21, 2, 5, 0, 0},  // 2018
	{7, 15, 2, 4, 0, 0},  // 2019
}

// xenCritCategories approximates §2.1's distribution of Xen critical
// vulnerabilities: 38.4% PV mechanisms, 28.2% resource management, 15.3%
// hardware mishandling, 7.5% toolstack, 10.2% QEMU.
var xenCritCategories = []struct {
	cat  Category
	frac float64
}{
	{CatPVMechanisms, 0.384},
	{CatResourceMgmt, 0.282},
	{CatHardware, 0.153},
	{CatToolstack, 0.075},
	{CatQEMU, 0.102},
}

// kvmCritCategories approximates §2.1's KVM distribution: 27% ioctls,
// 36% hardware mishandling, 36% QEMU, 9% resource management (the paper's
// fractions overshoot 100%; they are normalized here).
var kvmCritCategories = []struct {
	cat  Category
	frac float64
}{
	{CatIoctl, 0.25},
	{CatHardware, 0.33},
	{CatQEMU, 0.33},
	{CatResourceMgmt, 0.09},
}

// kvmWindowsDays are the §2.2 vulnerability windows of the 24 KVM
// vulnerabilities tracked through Red Hat's bug tracker: average 71 days,
// 15/24 (62.5%) above 60 days, maximum 180 (CVE-2017-12188), minimum 8
// (CVE-2013-0311).
var kvmWindowsDays = []int{
	8, 10, 12, 15, 20, 25, 30, 40, 50, // ≤ 60 days
	64, 67, 70, 73, 76, 80, 84, 88, 92, 98, 105, 115, 130, 172, 180, // > 60 days
}

// Load builds the database. The content is deterministic.
func Load() *Database {
	db := &Database{}
	for yi, row := range table1 {
		year := FirstYear + yi
		xenCrit, xenMed, kvmCrit, kvmMed, comCrit, comMed := row[0], row[1], row[2], row[3], row[4], row[5]

		// Common vulnerabilities are counted inside the per-HV columns
		// in Table 1? No — the paper counts them separately ("we
		// counted only one common critical vulnerability"), so the Xen
		// and KVM columns are HV-specific and Common is its own set.
		db.addSynthetic(year, "xen", SeverityCritical, xenCrit, pickCats(xenCritCategories, xenCrit))
		db.addSynthetic(year, "xen", SeverityMedium, xenMed, nil)
		db.addSynthetic(year, "kvm", SeverityCritical, kvmCrit, pickCats(kvmCritCategories, kvmCrit))
		db.addSynthetic(year, "kvm", SeverityMedium, kvmMed, nil)
		_ = comCrit
		_ = comMed
	}

	// Named real-world entries replace synthetic placeholders where the
	// paper discusses them specifically.
	db.replace(Record{
		ID: "CVE-2015-3456", Year: 2015, CVSS: 7.7, Category: CatQEMU,
		Affects: []string{"xen", "kvm"},
		Description: "VENOM: QEMU virtual floppy disk controller missing bounds " +
			"check leading to buffer overflow — the only common critical " +
			"vulnerability in the studied period",
	})
	db.replace(Record{
		ID: "CVE-2015-8104", Year: 2015, CVSS: 4.9, Category: CatHardware,
		Affects:     []string{"xen", "kvm"},
		Description: "DoS via incomplete handling of the Debug Exception (#DB)",
	})
	db.replace(Record{
		ID: "CVE-2015-5307", Year: 2015, CVSS: 4.9, Category: CatHardware,
		Affects:     []string{"xen", "kvm"},
		Description: "DoS via incomplete handling of the Alignment Check exception (#AC)",
	})
	db.replace(Record{
		ID: "CVE-2016-6258", Year: 2016, CVSS: 7.2, Category: CatPVMechanisms,
		Affects: []string{"xen"}, WindowDays: 7,
		Description: "Xen PV pagetable flaw; patch publicly released 7 days after discovery",
	})
	db.replace(Record{
		ID: "CVE-2017-12188", Year: 2017, CVSS: 7.2, Category: CatHardware,
		Affects: []string{"kvm"}, WindowDays: 180,
		Description: "KVM nested MMU flaw; the longest observed vulnerability window (180 days)",
	})
	db.replace(Record{
		ID: "CVE-2013-0311", Year: 2013, CVSS: 7.2, Category: CatIoctl,
		Affects: []string{"kvm"}, WindowDays: 8,
		Description: "KVM vhost descriptor flaw; the shortest observed window (8 days)",
	})
	db.replace(Record{
		ID: "CVE-2017-5753", Year: 2018, CVSS: 4.7, Category: CatHardwareCPU,
		Affects: []string{"xen", "kvm"}, WindowDays: 216,
		Description: "Spectre v1: CPU-level speculative execution leak; reported " +
			"2017-06-01, disclosed 2018-01-03 after a 7-month embargo",
	})
	db.replace(Record{
		ID: "CVE-2017-5754", Year: 2018, CVSS: 4.7, Category: CatHardwareCPU,
		Affects: []string{"xen", "kvm"}, WindowDays: 216,
		Description: "Meltdown: CPU-level kernel memory read; same 7-month embargo",
	})

	// Assign the §2.2 windows to the remaining tracked KVM
	// vulnerabilities. The named CVEs already carry the real minimum (8,
	// CVE-2013-0311) and maximum (180, CVE-2017-12188), so the other 22
	// values go to synthetic records — 24 tracked in total.
	var assignable []int
	for _, w := range kvmWindowsDays {
		if w != 8 && w != 180 {
			assignable = append(assignable, w)
		}
	}
	assigned := 0
	for i := range db.records {
		r := &db.records[i]
		if assigned >= len(assignable) {
			break
		}
		if len(r.Affects) == 1 && r.Affects[0] == "kvm" && r.WindowDays == 0 {
			r.WindowDays = assignable[assigned]
			assigned++
		}
	}
	sort.Slice(db.records, func(i, j int) bool {
		if db.records[i].Year != db.records[j].Year {
			return db.records[i].Year < db.records[j].Year
		}
		return db.records[i].ID < db.records[j].ID
	})
	return db
}

// addSynthetic appends n placeholder records.
func (db *Database) addSynthetic(year int, hv string, sev Severity, n int, cats []Category) {
	for i := 0; i < n; i++ {
		cvss := 5.0
		if sev == SeverityCritical {
			cvss = 7.5
		}
		cat := CatResourceMgmt
		if cats != nil {
			cat = cats[i%len(cats)]
		}
		db.records = append(db.records, Record{
			ID:       fmt.Sprintf("CVE-%d-%s%03d%s", year, map[string]string{"xen": "1", "kvm": "2"}[hv], i, sevTag(sev)),
			Year:     year,
			CVSS:     cvss,
			Category: cat,
			Affects:  []string{hv},
		})
	}
}

func sevTag(s Severity) string {
	if s == SeverityCritical {
		return "C"
	}
	return "M"
}

// pickCats expands a fractional category distribution into n category
// assignments (largest remainders first).
func pickCats(dist []struct {
	cat  Category
	frac float64
}, n int) []Category {
	out := make([]Category, 0, n)
	for _, d := range dist {
		k := int(d.frac*float64(n) + 0.5)
		for i := 0; i < k && len(out) < n; i++ {
			out = append(out, d.cat)
		}
	}
	for len(out) < n {
		out = append(out, dist[0].cat)
	}
	return out
}

// replace swaps one synthetic record of the same (year, hv-set severity)
// for the given named record, preserving Table 1 counts. Common records
// (multi-HV) are additive because Table 1 counts them in their own
// column.
func (db *Database) replace(named Record) {
	if len(named.Affects) > 1 {
		db.records = append(db.records, named)
		return
	}
	want := named.Severity()
	for i := range db.records {
		r := &db.records[i]
		if r.Year == named.Year && len(r.Affects) == 1 &&
			r.Affects[0] == named.Affects[0] && r.Severity() == want &&
			r.Description == "" {
			db.records[i] = named
			return
		}
	}
	db.records = append(db.records, named)
}

// All returns every record.
func (db *Database) All() []Record { return db.records }

// Count returns the number of records in the (year, hv, severity) cell,
// where hv is "xen", "kvm" or "common". HV-specific cells exclude common
// vulnerabilities, matching Table 1's columns. CPU-level flaws
// (Spectre/Meltdown) are excluded from the table, as in the paper.
func (db *Database) Count(year int, hv string, sev Severity) int {
	n := 0
	for i := range db.records {
		r := &db.records[i]
		if r.Year != year || r.Severity() != sev || r.Category == CatHardwareCPU {
			continue
		}
		common := len(r.Affects) > 1
		switch hv {
		case "common":
			if common {
				n++
			}
		default:
			if !common && r.Affected(hv) {
				n++
			}
		}
	}
	return n
}

// WindowStats summarizes the §2.2 KVM vulnerability windows.
type WindowStats struct {
	Tracked     int
	AverageDays float64
	Over60Frac  float64
	MaxDays     int
	MaxID       string
	MinDays     int
	MinID       string
}

// KVMWindowStats computes the §2.2 statistics over the tracked KVM
// vulnerabilities.
func (db *Database) KVMWindowStats() WindowStats {
	var s WindowStats
	sum := 0
	over := 0
	for i := range db.records {
		r := &db.records[i]
		if r.WindowDays == 0 || !r.Affected("kvm") || len(r.Affects) > 1 {
			continue
		}
		s.Tracked++
		sum += r.WindowDays
		if r.WindowDays > 60 {
			over++
		}
		if r.WindowDays > s.MaxDays {
			s.MaxDays, s.MaxID = r.WindowDays, r.ID
		}
		if s.MinDays == 0 || r.WindowDays < s.MinDays {
			s.MinDays, s.MinID = r.WindowDays, r.ID
		}
	}
	if s.Tracked > 0 {
		s.AverageDays = float64(sum) / float64(s.Tracked)
		s.Over60Frac = float64(over) / float64(s.Tracked)
	}
	return s
}

// Lookup finds a record by CVE id.
func (db *Database) Lookup(id string) (*Record, bool) {
	for i := range db.records {
		if db.records[i].ID == id {
			return &db.records[i], true
		}
	}
	return nil, false
}

// CommonVulnerabilities returns the records affecting more than one
// hypervisor (excluding CPU-level flaws, which the paper treats
// separately).
func (db *Database) CommonVulnerabilities() []Record {
	var out []Record
	for _, r := range db.records {
		if len(r.Affects) > 1 && r.Category != CatHardwareCPU {
			out = append(out, r)
		}
	}
	return out
}

// SelectTarget implements the transplant decision policy of §1/§3.1:
// given the current hypervisor and the set of active (unpatched) flaws,
// choose a hypervisor from the pool that is subject to none of them.
// It returns an error when every candidate is affected (e.g. VENOM).
func (db *Database) SelectTarget(current string, activeIDs []string, pool []string) (string, error) {
	var active []*Record
	for _, id := range activeIDs {
		r, ok := db.Lookup(id)
		if !ok {
			return "", fmt.Errorf("vulndb: unknown vulnerability %q", id)
		}
		active = append(active, r)
	}
	for _, cand := range pool {
		if cand == current {
			continue
		}
		safe := true
		for _, r := range active {
			if r.Affected(cand) {
				safe = false
				break
			}
		}
		if safe {
			return cand, nil
		}
	}
	return "", fmt.Errorf("vulndb: no hypervisor in pool %v avoids all of %v", pool, activeIDs)
}

// TransplantWorthwhile reports whether the paper's policy calls for a
// transplant: the flaw is critical and at least one pool member is
// unaffected.
func (db *Database) TransplantWorthwhile(id string, current string, pool []string) (bool, string) {
	r, ok := db.Lookup(id)
	if !ok || r.Severity() != SeverityCritical || !r.Affected(current) {
		return false, ""
	}
	target, err := db.SelectTarget(current, []string{id}, pool)
	if err != nil {
		return false, ""
	}
	return true, target
}
