package simtime

import "math"

// Rand is a small deterministic pseudo-random source (SplitMix64) used for
// modeled measurement noise (e.g. the box-plot variance of Xen's sequential
// migration receive path). It is used instead of math/rand so that every
// experiment is reproducible from a single uint64 seed regardless of the Go
// release.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("simtime: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns a sample from a normal distribution with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *Rand) Normal(mean, stddev float64) float64 {
	u1 := 1.0 - r.Float64() // (0, 1]
	u2 := r.Float64()
	z := math.Sqrt(-2.0*math.Log(u1)) * math.Cos(2.0*math.Pi*u2)
	return mean + stddev*z
}

// Jitter returns x scaled by a factor uniform in [1-frac, 1+frac].
func (r *Rand) Jitter(x float64, frac float64) float64 {
	return x * (1 + frac*(2*r.Float64()-1))
}
