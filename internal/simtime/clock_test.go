package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", c.Now())
	}
}

func TestAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(3 * time.Second)
	c.Advance(500 * time.Millisecond)
	if got, want := c.Now(), 3500*time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestScheduleOrdering(t *testing.T) {
	c := NewClock()
	var order []string
	c.Schedule(2*time.Second, "b", func(*Clock) { order = append(order, "b") })
	c.Schedule(1*time.Second, "a", func(*Clock) { order = append(order, "a") })
	c.Schedule(3*time.Second, "c", func(*Clock) { order = append(order, "c") })
	c.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("fire order = %v, want [a b c]", order)
	}
	if c.Now() != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", c.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	c := NewClock()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(time.Second, "ev", func(*Clock) { order = append(order, i) })
	}
	c.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO among ties)", i, v, i)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	c := NewClock()
	c.Advance(time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	c.Schedule(500*time.Millisecond, "late", func(*Clock) {})
}

func TestAfter(t *testing.T) {
	c := NewClock()
	c.Advance(time.Second)
	fired := time.Duration(-1)
	c.After(2*time.Second, "x", func(c *Clock) { fired = c.Now() })
	c.Run()
	if fired != 3*time.Second {
		t.Fatalf("fired at %v, want 3s", fired)
	}
}

func TestCancel(t *testing.T) {
	c := NewClock()
	fired := false
	ev := c.Schedule(time.Second, "x", func(*Clock) { fired = true })
	if !c.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if c.Cancel(ev) {
		t.Fatal("second Cancel returned true")
	}
	c.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelMiddleOfQueue(t *testing.T) {
	c := NewClock()
	var order []string
	a := c.Schedule(1*time.Second, "a", func(*Clock) { order = append(order, "a") })
	b := c.Schedule(2*time.Second, "b", func(*Clock) { order = append(order, "b") })
	d := c.Schedule(3*time.Second, "d", func(*Clock) { order = append(order, "d") })
	_ = a
	_ = d
	c.Cancel(b)
	c.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "d" {
		t.Fatalf("order = %v, want [a d]", order)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	c := NewClock()
	var times []time.Duration
	c.Schedule(time.Second, "first", func(c *Clock) {
		times = append(times, c.Now())
		c.After(time.Second, "second", func(c *Clock) {
			times = append(times, c.Now())
		})
	})
	c.Run()
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Fatalf("times = %v, want [1s 2s]", times)
	}
}

func TestRunUntil(t *testing.T) {
	c := NewClock()
	var fired []string
	c.Schedule(1*time.Second, "a", func(*Clock) { fired = append(fired, "a") })
	c.Schedule(5*time.Second, "b", func(*Clock) { fired = append(fired, "b") })
	c.RunUntil(3 * time.Second)
	if len(fired) != 1 || fired[0] != "a" {
		t.Fatalf("fired = %v, want [a]", fired)
	}
	if c.Now() != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", c.Now())
	}
	if c.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", c.Pending())
	}
}

func TestStepEmptyQueue(t *testing.T) {
	c := NewClock()
	if c.Step() {
		t.Fatal("Step() on empty queue returned true")
	}
}

func TestPending(t *testing.T) {
	c := NewClock()
	for i := 0; i < 5; i++ {
		c.Schedule(time.Duration(i)*time.Second, "x", func(*Clock) {})
	}
	if c.Pending() != 5 {
		t.Fatalf("Pending() = %d, want 5", c.Pending())
	}
	c.Step()
	if c.Pending() != 4 {
		t.Fatalf("Pending() = %d after Step, want 4", c.Pending())
	}
}

// Property: regardless of insertion order, events fire in non-decreasing time
// order and the clock never moves backwards.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		c := NewClock()
		for _, o := range offsets {
			c.Schedule(time.Duration(o)*time.Millisecond, "e", func(*Clock) {})
		}
		last := time.Duration(-1)
		for c.Step() {
			if c.Now() < last {
				return false
			}
			last = c.Now()
		}
		return c.Pending() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestRandDifferentSeeds(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/64 times", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandNormalMoments(t *testing.T) {
	r := NewRand(11)
	const n = 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if mean < 9.9 || mean > 10.1 {
		t.Fatalf("mean = %v, want ~10", mean)
	}
	if variance < 3.6 || variance > 4.4 {
		t.Fatalf("variance = %v, want ~4", variance)
	}
}

func TestRandJitterBounds(t *testing.T) {
	r := NewRand(13)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(100, 0.1)
		if v < 90 || v > 110 {
			t.Fatalf("Jitter(100, 0.1) = %v out of [90,110]", v)
		}
	}
}
