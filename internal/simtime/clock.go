// Package simtime provides the discrete-event virtual clock that drives the
// whole HyperTP simulation. All durations in the evaluation are virtual:
// components charge time to a Clock instead of sleeping, which makes every
// experiment deterministic and lets the full paper evaluation replay in
// milliseconds of wall time.
package simtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock is a discrete-event simulation clock. The zero value is not usable;
// call NewClock.
//
// Clock is not safe for concurrent use. The simulator is single-threaded by
// design: "parallelism" inside the simulated machines (e.g. PRAM translation
// workers) is modeled analytically by the components that own it, not by
// running goroutines against the clock.
type Clock struct {
	now   time.Duration
	queue eventQueue
	seq   uint64
}

// Event is a scheduled callback. Fire receives the clock so handlers can
// schedule follow-up events.
type Event struct {
	At   time.Duration
	Name string
	Fire func(c *Clock)

	seq   uint64 // tie-breaker: FIFO among simultaneous events
	index int
}

// NewClock returns a clock positioned at t=0 with an empty event queue.
func NewClock() *Clock {
	return &Clock{}
}

// Now returns the current virtual time as an offset from simulation start.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d without running queued events.
// It is the primitive used by sequential code ("this step costs d").
// Advance panics if d is negative: simulated time never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: Advance(%v): negative duration", d))
	}
	c.now += d
}

// Schedule enqueues fn to run at absolute virtual time at. Scheduling in the
// past panics — it is always a simulation bug.
func (c *Clock) Schedule(at time.Duration, name string, fn func(c *Clock)) *Event {
	if at < c.now {
		panic(fmt.Sprintf("simtime: Schedule(%q) at %v before now %v", name, at, c.now))
	}
	ev := &Event{At: at, Name: name, Fire: fn, seq: c.seq}
	c.seq++
	heap.Push(&c.queue, ev)
	return ev
}

// After enqueues fn to run d from now.
func (c *Clock) After(d time.Duration, name string, fn func(c *Clock)) *Event {
	return c.Schedule(c.now+d, name, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or already
// cancelled event is a no-op and returns false.
func (c *Clock) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 || ev.index >= len(c.queue) || c.queue[ev.index] != ev {
		return false
	}
	heap.Remove(&c.queue, ev.index)
	ev.index = -1
	return true
}

// Pending reports the number of queued events.
func (c *Clock) Pending() int { return len(c.queue) }

// Step fires the earliest pending event, advancing the clock to its time.
// It returns false if the queue is empty.
func (c *Clock) Step() bool {
	if len(c.queue) == 0 {
		return false
	}
	ev := heap.Pop(&c.queue).(*Event)
	ev.index = -1
	if ev.At > c.now {
		c.now = ev.At
	}
	ev.Fire(c)
	return true
}

// Run fires events until the queue drains.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// RunUntil fires events with At <= deadline, then advances the clock to
// deadline if it is still behind.
func (c *Clock) RunUntil(deadline time.Duration) {
	for len(c.queue) > 0 && c.queue[0].At <= deadline {
		c.Step()
	}
	if c.now < deadline {
		c.now = deadline
	}
}

// eventQueue is a min-heap on (At, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
