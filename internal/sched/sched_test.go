package sched

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"hypertp/internal/hterr"
	"hypertp/internal/obs"
	"hypertp/internal/par"
)

// costNode is a shorthand for a fixed-duration node.
func costNode(g *Graph, name string, cost time.Duration) *Node {
	return g.Add(&Node{Name: name, Cost: cost})
}

func TestDiamondDAG(t *testing.T) {
	// a → (b, c) → d. b and c are independent and must overlap; the
	// makespan is a + max(b, c) + d, not the serial sum.
	g := NewGraph()
	a := costNode(g, "a", 4*time.Second)
	b := costNode(g, "b", 10*time.Second)
	c := costNode(g, "c", 6*time.Second)
	d := costNode(g, "d", 2*time.Second)
	g.Dep(b, a)
	g.Dep(c, a)
	g.Dep(d, b)
	g.Dep(d, c)

	s, err := Execute(g, Limits{}, Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if want := 16 * time.Second; s.Makespan != want {
		t.Fatalf("makespan = %v, want %v", s.Makespan, want)
	}
	if rb, rc := s.Result(b), s.Result(c); rb.Start != rc.Start {
		t.Fatalf("b and c should start together, got %v and %v", rb.Start, rc.Start)
	}
	if rd := s.Result(d); rd.Start != 14*time.Second {
		t.Fatalf("d starts at %v, want 14s (after the slower of b/c)", rd.Start)
	}

	// The same diamond under Serial limits is the plain sum.
	g2 := NewGraph()
	a2 := costNode(g2, "a", 4*time.Second)
	b2 := costNode(g2, "b", 10*time.Second)
	c2 := costNode(g2, "c", 6*time.Second)
	d2 := costNode(g2, "d", 2*time.Second)
	g2.Dep(b2, a2)
	g2.Dep(c2, a2)
	g2.Dep(d2, b2)
	g2.Dep(d2, c2)
	s2, err := Execute(g2, Serial(), Options{})
	if err != nil {
		t.Fatalf("Execute serial: %v", err)
	}
	if want := 22 * time.Second; s2.Makespan != want {
		t.Fatalf("serial makespan = %v, want %v", s2.Makespan, want)
	}
}

func TestHostExclusivity(t *testing.T) {
	// Two migrations sharing a destination host must serialize even
	// with unlimited counting capacity.
	g := NewGraph()
	m1 := g.Add(&Node{Name: "m1", Hosts: []string{"src1", "dst"}, Cost: 5 * time.Second})
	m2 := g.Add(&Node{Name: "m2", Hosts: []string{"src2", "dst"}, Cost: 5 * time.Second})
	_ = m1
	_ = m2
	s, err := Execute(g, Limits{}, Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if want := 10 * time.Second; s.Makespan != want {
		t.Fatalf("makespan = %v, want %v (shared host must serialize)", s.Makespan, want)
	}
}

func TestCapacityLimits(t *testing.T) {
	// Four kexecs under MaxKexecs=2 take two waves.
	g := NewGraph()
	for i := 0; i < 4; i++ {
		g.Add(&Node{Name: fmt.Sprintf("kexec-%d", i), Hosts: []string{fmt.Sprintf("h%d", i)}, Kexecs: 1, Cost: 8 * time.Second})
	}
	s, err := Execute(g, Limits{MaxKexecs: 2}, Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if want := 16 * time.Second; s.Makespan != want {
		t.Fatalf("makespan = %v, want %v (two waves of two kexecs)", s.Makespan, want)
	}
}

func TestCapacityStarvedPlan(t *testing.T) {
	// A node demanding two streams on a one-stream fabric can never be
	// admitted: Execute must fail with ErrStarved + the invariant
	// class, not hang or silently drop the node.
	g := NewGraph()
	g.Add(&Node{Name: "wide-migrate", Streams: 2, Cost: time.Second})
	_, err := Execute(g, Limits{LinkStreams: 1}, Options{})
	if err == nil {
		t.Fatal("Execute succeeded on a starved plan")
	}
	if !errors.Is(err, ErrStarved) {
		t.Fatalf("err = %v, want ErrStarved", err)
	}
	if !errors.Is(err, hterr.ErrInvariantViolated) {
		t.Fatalf("err = %v, want invariant-violated class", err)
	}

	// A dependency cycle is the other starvation shape.
	g2 := NewGraph()
	a := costNode(g2, "a", time.Second)
	b := costNode(g2, "b", time.Second)
	g2.Dep(a, b)
	g2.Dep(b, a)
	_, err = Execute(g2, Limits{}, Options{})
	if !errors.Is(err, ErrStarved) {
		t.Fatalf("cycle: err = %v, want ErrStarved", err)
	}
}

func TestDepFailurePoisonsDependents(t *testing.T) {
	g := NewGraph()
	boom := errors.New("boom")
	a := g.Add(&Node{Name: "a", Run: func(start time.Duration) (time.Duration, error) {
		return time.Second, boom
	}})
	var bErr error
	b := g.Add(&Node{Name: "b", Cost: time.Second, Commit: func(end time.Duration, err error) { bErr = err }})
	c := costNode(g, "c", time.Second) // independent, must still run
	g.Dep(b, a)

	s, err := Execute(g, Limits{}, Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if s.Failed != 1 || s.Skipped != 1 {
		t.Fatalf("failed/skipped = %d/%d, want 1/1", s.Failed, s.Skipped)
	}
	if !errors.Is(bErr, ErrDepFailed) || !strings.Contains(bErr.Error(), "boom") {
		t.Fatalf("b's commit error = %v, want ErrDepFailed wrapping boom", bErr)
	}
	if rc := s.Result(c); rc.Err != nil {
		t.Fatalf("independent node c failed: %v", rc.Err)
	}
}

func TestReplanMidSchedule(t *testing.T) {
	// A quarantined host mid-schedule: the transplant of h1 fails, and
	// OnFail replans its VMs as two drain migrations to h2 — which must
	// be admitted and extend the makespan, while h1's follow-up node is
	// skipped.
	g := NewGraph()
	boom := errors.New("host fault")
	tp := g.Add(&Node{Name: "transplant:h1", Hosts: []string{"h1"}, Kexecs: 1,
		Run: func(start time.Duration) (time.Duration, error) { return 4 * time.Second, boom }})
	follow := g.Add(&Node{Name: "verify:h1", Hosts: []string{"h1"}, Cost: time.Second})
	g.Dep(follow, tp)

	var drained []string
	opts := Options{OnFail: func(n *Node, err error) bool {
		if n != tp {
			t.Fatalf("OnFail for unexpected node %s", n.Name)
		}
		for i := 0; i < 2; i++ {
			vm := fmt.Sprintf("drain:vm-%d", i)
			g.Add(&Node{Name: vm, Hosts: []string{"h2"}, Streams: 1, Cost: 3 * time.Second,
				Commit: func(end time.Duration, err error) {
					if err == nil {
						drained = append(drained, vm)
					}
				}})
		}
		return false
	}}

	s, err := Execute(g, Limits{LinkStreams: 1}, opts)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(drained) != 2 {
		t.Fatalf("drained = %v, want both replanned migrations to run", drained)
	}
	// 4s failed transplant, then two 3s drains serialized on one stream
	// (same host h2 anyway).
	if want := 10 * time.Second; s.Makespan != want {
		t.Fatalf("makespan = %v, want %v", s.Makespan, want)
	}
	if rf := s.Result(follow); !errors.Is(rf.Err, ErrDepFailed) {
		t.Fatalf("follow-up on quarantined host: err = %v, want ErrDepFailed", rf.Err)
	}
}

func TestOnFailStop(t *testing.T) {
	g := NewGraph()
	boom := errors.New("vm lost")
	g.Add(&Node{Name: "a", Hosts: []string{"h1"},
		Run: func(start time.Duration) (time.Duration, error) { return time.Second, boom }})
	late := g.Add(&Node{Name: "late", Hosts: []string{"h2"}, Cost: time.Second})

	s, err := Execute(g, Serial(), Options{OnFail: func(n *Node, err error) bool {
		return true
	}})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if rl := s.Result(late); !errors.Is(rl.Err, ErrDepFailed) {
		t.Fatalf("node after stop: err = %v, want ErrDepFailed skip", rl.Err)
	}
}

func TestPrepareCommitSequential(t *testing.T) {
	// Prepare and Commit are the sequential phases: they must never
	// overlap each other even when Run bodies race on the pool. A
	// shared counter with no locking detects violations under -race.
	const nodes = 32
	g := NewGraph()
	seq := 0
	var order []string
	for i := 0; i < nodes; i++ {
		name := fmt.Sprintf("n-%02d", i)
		g.Add(&Node{
			Name:    name,
			Hosts:   []string{name},
			Cost:    time.Duration(1+i%3) * time.Second,
			Prepare: func(start time.Duration) { seq++ },
			Commit: func(end time.Duration, err error) {
				seq++
				order = append(order, name)
			},
		})
	}
	s, err := Execute(g, Limits{}, Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if seq != 2*nodes {
		t.Fatalf("sequential phases ran %d times, want %d", seq, 2*nodes)
	}
	if len(order) != nodes || len(s.Results) != nodes {
		t.Fatalf("commit order has %d entries, want %d", len(order), nodes)
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	// The full observable schedule — completion order, starts, ends,
	// makespan — must be identical for any pool width, including Run
	// bodies that take different wall time.
	build := func() (*Graph, *[]string) {
		g := NewGraph()
		var log []string
		var mu sync.Mutex
		for i := 0; i < 24; i++ {
			i := i
			name := fmt.Sprintf("op-%02d", i)
			n := g.Add(&Node{
				Name:    name,
				Hosts:   []string{fmt.Sprintf("h%d", i%8)},
				Kexecs:  i % 2,
				Streams: (i + 1) % 2,
				Run: func(start time.Duration) (time.Duration, error) {
					// Uneven wall-clock work; virtual cost is pure.
					x := 0
					for j := 0; j < (i%5)*10000; j++ {
						x += j
					}
					_ = x
					return time.Duration(1+i%7) * time.Second, nil
				},
				Commit: func(end time.Duration, err error) {
					mu.Lock()
					log = append(log, fmt.Sprintf("%s@%v", name, end))
					mu.Unlock()
				},
			})
			if i >= 8 {
				g.Dep(n, g.nodes[i-8])
			}
		}
		return g, &log
	}

	run := func(workers int) (time.Duration, []string) {
		old := par.Workers()
		par.SetWorkers(workers)
		defer par.SetWorkers(old)
		g, log := build()
		s, err := Execute(g, Limits{MaxKexecs: 2, LinkStreams: 3}, Options{})
		if err != nil {
			t.Fatalf("Execute(workers=%d): %v", workers, err)
		}
		return s.Makespan, *log
	}

	m1, l1 := run(1)
	m8, l8 := run(8)
	if m1 != m8 {
		t.Fatalf("makespan differs: workers=1 %v, workers=8 %v", m1, m8)
	}
	if fmt.Sprint(l1) != fmt.Sprint(l8) {
		t.Fatalf("commit log differs across workers:\n 1: %v\n 8: %v", l1, l8)
	}
}

func TestQueueDelayMetrics(t *testing.T) {
	// Four kexecs under MaxKexecs=2: the first wave admits with zero
	// delay, the second waits a full 8s wave. The queue-delay histogram
	// sees all four admissions; starvation sees only the delayed two.
	build := func() *Graph {
		g := NewGraph()
		for i := 0; i < 4; i++ {
			g.Add(&Node{Name: fmt.Sprintf("kexec-%d", i), Hosts: []string{fmt.Sprintf("h%d", i)}, Kexecs: 1, Cost: 8 * time.Second})
		}
		return g
	}
	reg := obs.NewRegistry()
	if _, err := Execute(build(), Limits{MaxKexecs: 2}, Options{Metrics: reg}); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	qd := reg.Histogram("sched.queue_delay.kexec", "ns", nil)
	if qd.Count() != 4 {
		t.Fatalf("queue_delay.kexec count = %d, want 4", qd.Count())
	}
	if want := float64((16 * time.Second).Nanoseconds()); qd.Sum() != want {
		t.Fatalf("queue_delay.kexec sum = %g ns, want %g (two 8s waits)", qd.Sum(), want)
	}
	sv := reg.Histogram("sched.starvation.kexec", "ns", nil)
	if sv.Count() != 2 {
		t.Fatalf("starvation.kexec count = %d, want 2", sv.Count())
	}
	if reg.Histogram("sched.queue_delay.host", "ns", nil).Count() != 0 {
		t.Fatal("kexec nodes must not be attributed to the host resource")
	}

	// A node with no counted demands lands in the host histogram.
	g := NewGraph()
	g.Add(&Node{Name: "m1", Hosts: []string{"src", "dst"}, Cost: time.Second})
	g.Add(&Node{Name: "m2", Hosts: []string{"dst", "other"}, Cost: time.Second})
	reg2 := obs.NewRegistry()
	if _, err := Execute(g, Limits{}, Options{Metrics: reg2}); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	hd := reg2.Histogram("sched.queue_delay.host", "ns", nil)
	if hd.Count() != 2 {
		t.Fatalf("queue_delay.host count = %d, want 2", hd.Count())
	}
	if reg2.Histogram("sched.starvation.host", "ns", nil).Count() != 1 {
		t.Fatal("host-blocked second migration should register one starvation sample")
	}

	// The metrics JSON of the scheduling histograms is identical across
	// worker-pool widths (the determinism contract extends to metrics).
	render := func(workers int) string {
		old := par.Workers()
		par.SetWorkers(workers)
		defer par.SetWorkers(old)
		reg := obs.NewRegistry()
		g := build()
		for _, n := range g.nodes {
			n.Run = func(start time.Duration) (time.Duration, error) { return 8 * time.Second, nil }
		}
		if _, err := Execute(g, Limits{MaxKexecs: 2}, Options{Metrics: reg}); err != nil {
			t.Fatalf("Execute(workers=%d): %v", workers, err)
		}
		var b strings.Builder
		if err := reg.WriteMetricsJSON(&b, false); err != nil {
			t.Fatalf("WriteMetricsJSON: %v", err)
		}
		return b.String()
	}
	if a, b := render(1), render(8); a != b {
		t.Fatalf("scheduling metrics differ across workers:\n%s\n---\n%s", a, b)
	}
}
