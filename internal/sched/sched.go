// Package sched is the dependency-aware concurrent fleet scheduler: the
// datacenter-scale execution layer the paper's §6 end-game needs. A
// fleet response (transplant every vulnerable host, evacuate what cannot
// transplant in place, migrate the rest) is modeled as a DAG of
// host-level operations with capacity constraints — spare-host slots,
// migration streams on the shared fabric, and a bound on simultaneous
// kexec micro-reboots — and executed as a discrete-event list schedule
// on a shared virtual timeline.
//
// The scheduler separates the two kinds of parallelism the same way the
// rest of the stack does (see internal/par):
//
//   - Virtual-time parallelism is the schedule itself: ready nodes whose
//     resources are free start at the same virtual instant, and the
//     makespan is the merged per-host timeline (a min-heap of completion
//     events on a simtime.Clock, the same structure as
//     hw.ParallelElapsedVaried).
//   - Wall-clock parallelism executes each admitted batch's Run bodies
//     on the internal/par worker pool. Run bodies must be independent —
//     host-exclusive by construction (every node claims its hosts) and
//     free of shared mutable state; everything order-dependent goes in
//     the sequential Prepare (admission) and Commit (completion) hooks.
//
// Determinism contract: admission order is node-ID order, completion
// order is (virtual finish time, admission sequence) order, and batch
// results are collected by index via par.Map — so the schedule, every
// Commit's observation order, and the makespan are byte-identical for
// any worker-pool size.
package sched

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"hypertp/internal/hterr"
	"hypertp/internal/obs"
	"hypertp/internal/par"
	"hypertp/internal/simtime"
)

// ErrDepFailed marks a node skipped because one of its dependencies
// failed (or was itself skipped). The node's Commit hook still runs so
// callers can record the degradation.
var ErrDepFailed = errors.New("sched: dependency failed")

// ErrStarved is returned by Execute when pending nodes can never be
// admitted: the graph has a cycle, or a node demands more capacity than
// the limits provide (e.g. two streams on a one-stream fabric).
var ErrStarved = errors.New("sched: schedule starved")

// Node is one host-level operation in the response DAG.
type Node struct {
	// ID is assigned by Graph.Add and orders admission among
	// simultaneously-ready nodes.
	ID int
	// Name labels the node in schedules, errors and spans.
	Name string

	// Hosts are the unit resources the node occupies exclusively while
	// running: a transplant claims its host, a migration claims both
	// endpoints. Host exclusivity is what makes Run bodies data-race
	// free without locks.
	Hosts []string
	// Kexecs, Streams and Spares are counted demands against
	// Limits.MaxKexecs, Limits.LinkStreams and Limits.SpareSlots.
	Kexecs  int
	Streams int
	Spares  int

	// Cost is the node's virtual duration when Run is nil (cost-mode
	// scheduling, used by the clock-less cluster planner).
	Cost time.Duration
	// Run executes the operation and returns its virtual duration. It
	// is called on the par pool (or inline under Limits.Serial) with
	// the node's virtual start time; it must not touch state shared
	// with other concurrently-runnable nodes.
	Run func(start time.Duration) (time.Duration, error)
	// Prepare runs sequentially at admission time (deterministic
	// order), before the batch is dispatched: the place to snapshot
	// shared state into the Run closure or arm shared fault plans.
	Prepare func(start time.Duration)
	// Commit runs sequentially at completion time with the node's
	// virtual end and its error (nil, a Run error, or ErrDepFailed):
	// the place to apply bookkeeping, emit spans, and mutate shared
	// state for later nodes to observe.
	Commit func(end time.Duration, err error)

	deps  []*Node
	state nodeState
	start time.Duration
	err   error

	// readyAt is the virtual time the node first became ready (all deps
	// done, none failed); admission latency is measured from here.
	readyAt  time.Duration
	readySet bool
}

type nodeState uint8

const (
	statePending nodeState = iota
	stateRunning
	stateDone
)

// Graph is a DAG of nodes under construction. The zero value is ready to
// use.
type Graph struct {
	nodes []*Node
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// Add registers the node, assigns its ID, and returns it.
func (g *Graph) Add(n *Node) *Node {
	n.ID = len(g.nodes)
	g.nodes = append(g.nodes, n)
	return n
}

// Dep records that n runs only after dep completes successfully.
func (g *Graph) Dep(n, dep *Node) {
	if n == dep || dep == nil || n == nil {
		return
	}
	n.deps = append(n.deps, dep)
}

// Len returns the number of nodes added so far.
func (g *Graph) Len() int { return len(g.nodes) }

// Start returns the node's virtual start time; valid once the node has
// been admitted (inside Run, Commit, or after Execute).
func (n *Node) Start() time.Duration { return n.start }

// Limits are the capacity constraints a schedule runs under. Zero-valued
// counts mean "unlimited"; Serial admits one node at a time globally and
// executes it inline on the caller's goroutine (the sequential-baseline
// mode — byte-compatible with a plain loop over the nodes).
type Limits struct {
	// MaxKexecs bounds simultaneous in-place transplants: every kexec
	// micro-reboot monopolizes a host's cores and the fleet usually
	// caps how many hosts reboot at once.
	MaxKexecs int
	// LinkStreams bounds concurrent migration streams on the shared
	// fabric (per-link bandwidth admission).
	LinkStreams int
	// SpareSlots bounds concurrent use of spare-host capacity by
	// evacuate-then-transplant pipelines.
	SpareSlots int
	// Serial disables all concurrency: one node at a time, in ID
	// order, run inline.
	Serial bool
}

// Serial returns the sequential-baseline limits.
func Serial() Limits { return Limits{Serial: true} }

// NodeResult is one node's slot in the finished schedule.
type NodeResult struct {
	Node  *Node
	Start time.Duration
	End   time.Duration
	// Err is nil on success, the Run error on failure, or wraps
	// ErrDepFailed when the node was skipped.
	Err error
}

// Schedule is the outcome of Execute.
type Schedule struct {
	// Makespan is the virtual time from schedule start to the last
	// completion.
	Makespan time.Duration
	// Results holds one entry per node in completion order (the
	// deterministic event order).
	Results []NodeResult
	// Failed counts nodes that ran and returned an error; Skipped
	// counts nodes dropped because a dependency failed.
	Failed  int
	Skipped int
}

// Result returns the slot for the given node, or nil.
func (s *Schedule) Result(n *Node) *NodeResult {
	for i := range s.Results {
		if s.Results[i].Node == n {
			return &s.Results[i]
		}
	}
	return nil
}

// Options tune one Execute call.
type Options struct {
	// OnFail, when non-nil, is called sequentially when a node's Run
	// errors (not for ErrDepFailed skips). Replanning mid-schedule is
	// done by calling Graph.Add/Dep from OnFail or from any Commit hook
	// — added nodes join the pending set immediately. Returning
	// stop=true skips every node that has not started yet (the
	// unrecoverable-loss case).
	OnFail func(n *Node, err error) (stop bool)
	// Metrics, when non-nil, receives per-resource admission-latency
	// histograms: sched.queue_delay.<res> observes every admitted
	// node's ready-to-start delay against each resource it demands
	// (kexec, stream, spare; host when it demands none of the counted
	// kinds), and sched.starvation.<res> observes only the delayed
	// admissions — the contention tail. Observations happen in the
	// sequential admission path, so the histograms are deterministic.
	Metrics *obs.Registry
}

// queueBuckets spans 1ms..~4.7h of virtual admission delay.
var queueBuckets = obs.ExpBuckets(1e6, 4, 12)

// observeAdmission records n's ready-to-start delay per demanded
// resource. Nil registries no-op (obs convention).
func observeAdmission(m *obs.Registry, n *Node, delay time.Duration) {
	if m == nil {
		return
	}
	counted := false
	observe := func(res string) {
		m.Histogram("sched.queue_delay."+res, "ns", queueBuckets).
			Observe(float64(delay.Nanoseconds()))
		if delay > 0 {
			m.Histogram("sched.starvation."+res, "ns", queueBuckets).
				Observe(float64(delay.Nanoseconds()))
		}
	}
	if n.Kexecs > 0 {
		observe("kexec")
		counted = true
	}
	if n.Streams > 0 {
		observe("stream")
		counted = true
	}
	if n.Spares > 0 {
		observe("spare")
		counted = true
	}
	if !counted {
		observe("host")
	}
}

// Execute runs the graph to completion under the limits and returns the
// schedule. The returned error is non-nil only for structural failures
// (starvation, cycles); per-node errors land in the schedule results.
func Execute(g *Graph, limits Limits, opts Options) (*Schedule, error) {
	s := &Schedule{}
	clock := simtime.NewClock()
	stopped := false

	for _, n := range g.nodes {
		n.state = statePending
		n.err = nil
		n.readySet = false
	}

	running := 0
	usedKexecs, usedStreams, usedSpares := 0, 0, 0
	busyHosts := make(map[string]bool)

	fits := func(n *Node) bool {
		if limits.Serial && running > 0 {
			return false
		}
		if limits.MaxKexecs > 0 && usedKexecs+n.Kexecs > limits.MaxKexecs {
			return false
		}
		if limits.LinkStreams > 0 && usedStreams+n.Streams > limits.LinkStreams {
			return false
		}
		if limits.SpareSlots > 0 && usedSpares+n.Spares > limits.SpareSlots {
			return false
		}
		for _, h := range n.Hosts {
			if busyHosts[h] {
				return false
			}
		}
		return true
	}
	claim := func(n *Node) {
		usedKexecs += n.Kexecs
		usedStreams += n.Streams
		usedSpares += n.Spares
		for _, h := range n.Hosts {
			busyHosts[h] = true
		}
		running++
	}
	release := func(n *Node) {
		usedKexecs -= n.Kexecs
		usedStreams -= n.Streams
		usedSpares -= n.Spares
		for _, h := range n.Hosts {
			delete(busyHosts, h)
		}
		running--
	}

	// impossible reports a node that could never be admitted even on an
	// idle fleet — the starvation (not contention) case.
	impossible := func(n *Node) bool {
		if limits.MaxKexecs > 0 && n.Kexecs > limits.MaxKexecs {
			return true
		}
		if limits.LinkStreams > 0 && n.Streams > limits.LinkStreams {
			return true
		}
		if limits.SpareSlots > 0 && n.Spares > limits.SpareSlots {
			return true
		}
		return false
	}

	// depsDone reports all deps finished; depErr returns the first
	// failed dep's error. Readiness is recomputed by scanning (not
	// counted incrementally) so Commit/OnFail hooks can add replan
	// nodes and deps mid-schedule without bookkeeping hazards.
	depsDone := func(n *Node) bool {
		for _, d := range n.deps {
			if d.state != stateDone {
				return false
			}
		}
		return true
	}
	depErr := func(n *Node) error {
		for _, d := range n.deps {
			if d.err != nil {
				return d.err
			}
		}
		return nil
	}

	finish := func(n *Node, end time.Duration, err error) {
		n.state = stateDone
		n.err = err
		s.Results = append(s.Results, NodeResult{Node: n, Start: n.start, End: end, Err: err})
		if err != nil {
			if errors.Is(err, ErrDepFailed) {
				s.Skipped++
			} else {
				s.Failed++
			}
		}
		if n.Commit != nil {
			n.Commit(end, err)
		}
		if err != nil && !errors.Is(err, ErrDepFailed) && opts.OnFail != nil {
			if opts.OnFail(n, err) {
				stopped = true
			}
		}
	}

	for {
		// Skip poisoned ready nodes first: their Commit runs at the
		// current virtual time with ErrDepFailed.
		for progressed := true; progressed; {
			progressed = false
			for i := 0; i < len(g.nodes); i++ {
				n := g.nodes[i]
				if n.state != statePending || !depsDone(n) {
					continue
				}
				ferr := depErr(n)
				if ferr == nil && !stopped {
					continue
				}
				if ferr == nil {
					ferr = errors.New("schedule stopped")
				}
				n.state = stateRunning
				n.start = clock.Now()
				finish(n, clock.Now(), fmt.Errorf("%w: %s: %v", ErrDepFailed, n.Name, ferr))
				progressed = true
			}
		}

		// Admit ready nodes in ID order while capacity lasts.
		var batch []*Node
		for _, n := range g.nodes {
			if n.state != statePending || !depsDone(n) || depErr(n) != nil || stopped {
				continue
			}
			if !n.readySet {
				n.readyAt = clock.Now()
				n.readySet = true
			}
			if !fits(n) {
				if limits.Serial && len(batch) > 0 {
					break
				}
				continue
			}
			claim(n)
			n.state = stateRunning
			n.start = clock.Now()
			observeAdmission(opts.Metrics, n, n.start-n.readyAt)
			if n.Prepare != nil {
				n.Prepare(n.start)
			}
			batch = append(batch, n)
			if limits.Serial {
				break
			}
		}

		if len(batch) > 0 {
			outs := make([]outcome, len(batch))
			if limits.Serial || len(batch) == 1 {
				for i, n := range batch {
					outs[i] = runNode(n)
				}
			} else {
				res, _ := par.Map(batch, func(i int, n *Node) (outcome, error) {
					return runNode(n), nil
				})
				copy(outs, res)
			}
			for i, n := range batch {
				n := n
				out := outs[i]
				end := n.start + out.dur
				clock.Schedule(end, n.Name, func(c *simtime.Clock) {
					release(n)
					finish(n, end, out.err)
				})
			}
			continue
		}

		if clock.Pending() > 0 {
			clock.Step()
			continue
		}

		// Nothing running, nothing admissible: done or starved.
		remaining := 0
		var stuck []string
		for _, n := range g.nodes {
			if n.state == statePending {
				remaining++
				if depsDone(n) {
					stuck = append(stuck, n.Name)
				}
			}
		}
		if remaining == 0 {
			break
		}
		for _, n := range g.nodes {
			if n.state == statePending && depsDone(n) && impossible(n) {
				return nil, hterr.InvariantViolated(fmt.Errorf("%w: node %q demands more capacity than the limits provide", ErrStarved, n.Name))
			}
		}
		sort.Strings(stuck)
		return nil, hterr.InvariantViolated(fmt.Errorf("%w: %d nodes unreachable (cycle or unsatisfiable deps; ready-but-stuck: %v)", ErrStarved, remaining, stuck))
	}

	s.Makespan = clock.Now()
	return s, nil
}

// outcome is one node body's virtual duration and error.
type outcome struct {
	dur time.Duration
	err error
}

// runNode executes one node body: Run when present, otherwise the
// cost-mode fixed duration.
func runNode(n *Node) (out outcome) {
	if n.Run == nil {
		out.dur = n.Cost
		return out
	}
	out.dur, out.err = n.Run(n.start)
	if out.dur < 0 {
		out.dur = 0
	}
	return out
}
