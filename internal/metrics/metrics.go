// Package metrics provides the time-series and summary-statistics
// machinery the evaluation harness uses to report tables and figures:
// sampled series (QPS/latency timelines), box-plot statistics for the
// multi-VM migration experiments, and plain-text table/series rendering.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Point is one sample of a time series.
type Point struct {
	T time.Duration
	V float64
}

// Series is a named, time-ordered sequence of samples.
type Series struct {
	Name   string
	Unit   string
	Points []Point
}

// Add appends a sample; samples must be appended in time order.
func (s *Series) Add(t time.Duration, v float64) {
	if n := len(s.Points); n > 0 && s.Points[n-1].T > t {
		panic(fmt.Sprintf("metrics: out-of-order sample %v after %v", t, s.Points[n-1].T))
	}
	s.Points = append(s.Points, Point{T: t, V: v})
}

// At returns the value at time t (the most recent sample ≤ t), or 0
// before the first sample.
func (s *Series) At(t time.Duration) float64 {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > t })
	if i == 0 {
		return 0
	}
	return s.Points[i-1].V
}

// Values returns the raw sample values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Window returns samples in [from, to).
func (s *Series) Window(from, to time.Duration) []Point {
	var out []Point
	for _, p := range s.Points {
		if p.T >= from && p.T < to {
			out = append(out, p)
		}
	}
	return out
}

// Mean returns the arithmetic mean of vs (0 for empty input).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// StdDev returns the population standard deviation.
func StdDev(vs []float64) float64 {
	if len(vs) < 2 {
		return 0
	}
	m := Mean(vs)
	var sq float64
	for _, v := range vs {
		d := v - m
		sq += d * d
	}
	return math.Sqrt(sq / float64(len(vs)))
}

// dropNaN returns vs without NaN samples, reusing the input slice when
// it is already clean.
func dropNaN(vs []float64) []float64 {
	for i, v := range vs {
		if math.IsNaN(v) {
			out := make([]float64, i, len(vs))
			copy(out, vs[:i])
			for _, v := range vs[i+1:] {
				if !math.IsNaN(v) {
					out = append(out, v)
				}
			}
			return out
		}
	}
	return vs
}

// Percentile returns the p-th percentile (0-100) by linear
// interpolation. Empty input yields 0, and NaN samples are dropped
// first: one undefined observation (a 0/0 rate, say) must not poison
// the sort order and with it every quantile.
func Percentile(vs []float64, p float64) float64 {
	vs = dropNaN(vs)
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Summary is the count/mean/percentile digest used by the observability
// registry's renderers and by per-series latency reporting.
type Summary struct {
	Count          int
	Mean, Min, Max float64
	P50, P95, P99  float64
}

// Summarize computes the digest of vs. Empty input — including an
// unobserved histogram's reservoir — and all-NaN input both yield the
// well-defined zero Summary; every field of a Summary is always finite,
// never NaN, so exporters can emit it without poisoning goldens.
func Summarize(vs []float64) Summary {
	vs = dropNaN(vs)
	if len(vs) == 0 {
		return Summary{}
	}
	return Summary{
		Count: len(vs),
		Mean:  Mean(vs),
		Min:   Percentile(vs, 0),
		Max:   Percentile(vs, 100),
		P50:   Percentile(vs, 50),
		P95:   Percentile(vs, 95),
		P99:   Percentile(vs, 99),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// Summary returns the percentile digest of the series' sample values.
func (s *Series) Summary() Summary { return Summarize(s.Values()) }

// BoxStats is the five-number summary used for the paper's box plots.
type BoxStats struct {
	Min, Q1, Median, Q3, Max float64
}

// Box computes the five-number summary.
func Box(vs []float64) BoxStats {
	return BoxStats{
		Min:    Percentile(vs, 0),
		Q1:     Percentile(vs, 25),
		Median: Percentile(vs, 50),
		Q3:     Percentile(vs, 75),
		Max:    Percentile(vs, 100),
	}
}

func (b BoxStats) String() string {
	return fmt.Sprintf("min=%.3g q1=%.3g med=%.3g q3=%.3g max=%.3g",
		b.Min, b.Q1, b.Median, b.Q3, b.Max)
}

// Durations converts a slice of time.Durations to float64 seconds.
func Durations(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// Table is a simple text table for the harness output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render returns the table as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// RenderSeries renders a compact ASCII plot of one or more series over
// their shared time range — the harness's stand-in for the paper's
// figures.
func RenderSeries(width, height int, series ...*Series) string {
	if len(series) == 0 || width < 8 || height < 2 {
		return ""
	}
	var tMax time.Duration
	vMax := 0.0
	for _, s := range series {
		for _, p := range s.Points {
			if p.T > tMax {
				tMax = p.T
			}
			if p.V > vMax {
				vMax = p.V
			}
		}
	}
	if tMax == 0 || vMax == 0 {
		return ""
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := "*o+x#@"
	for si, s := range series {
		mark := marks[si%len(marks)]
		for col := 0; col < width; col++ {
			t := time.Duration(float64(tMax) * float64(col) / float64(width-1))
			v := s.At(t)
			row := height - 1 - int(v/vMax*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%8.3g ┤\n", vMax)
	for _, row := range grid {
		fmt.Fprintf(&b, "         │%s\n", string(row))
	}
	fmt.Fprintf(&b, "         └%s\n", strings.Repeat("─", width))
	fmt.Fprintf(&b, "          0%*s\n", width-1, fmt.Sprintf("%.3gs", tMax.Seconds()))
	for si, s := range series {
		fmt.Fprintf(&b, "          %c %s", marks[si%len(marks)], s.Name)
		if s.Unit != "" {
			fmt.Fprintf(&b, " (%s)", s.Unit)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
