package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
}

// TestSummarizeNeverNaN pins the exporter contract: whatever the input
// — empty, all-NaN, or NaN-contaminated — every Summary field is
// finite, so a zero-observation histogram renders p50=0, not NaN.
func TestSummarizeNeverNaN(t *testing.T) {
	nan := math.NaN()
	cases := map[string][]float64{
		"empty":   {},
		"all-nan": {nan, nan, nan},
		"mixed":   {3, nan, 1, nan, 2},
	}
	for name, vs := range cases {
		s := Summarize(vs)
		for field, v := range map[string]float64{
			"Mean": s.Mean, "Min": s.Min, "Max": s.Max,
			"P50": s.P50, "P95": s.P95, "P99": s.P99,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: %s = %g", name, field, v)
			}
		}
	}
	if s := Summarize([]float64{nan, nan}); s != (Summary{}) {
		t.Fatalf("all-NaN summary = %+v, want zero Summary", s)
	}
	// NaN samples are dropped, not zeroed: the finite digest survives.
	s := Summarize([]float64{3, nan, 1, nan, 2})
	if s.Count != 3 || s.Min != 1 || s.Max != 3 || s.P50 != 2 {
		t.Fatalf("mixed summary = %+v", s)
	}
}

func TestPercentileNaNInput(t *testing.T) {
	nan := math.NaN()
	if p := Percentile([]float64{nan, nan}, 50); p != 0 {
		t.Fatalf("all-NaN percentile = %g, want 0", p)
	}
	if p := Percentile([]float64{5, nan, 1}, 100); p != 5 {
		t.Fatalf("max over {5, NaN, 1} = %g, want 5", p)
	}
	b := Box([]float64{nan, 4, 2})
	if b.Min != 2 || b.Max != 4 || math.IsNaN(b.Median) {
		t.Fatalf("box over NaN-contaminated input = %+v", b)
	}
}

func TestSummarizePercentiles(t *testing.T) {
	// 1..100: the percentiles land on interpolated ranks.
	vs := make([]float64, 100)
	for i := range vs {
		vs[i] = float64(i + 1)
	}
	s := Summarize(vs)
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("bounds: %+v", s)
	}
	if s.Mean != 50.5 {
		t.Fatalf("mean = %g", s.Mean)
	}
	if s.P50 != 50.5 {
		t.Fatalf("p50 = %g", s.P50)
	}
	if s.P95 <= s.P50 || s.P99 <= s.P95 || s.P99 > s.Max {
		t.Fatalf("percentiles not ordered: %+v", s)
	}
	// Exact values for the interpolation: rank = p/100*(n-1).
	if s.P95 != 95.05 {
		t.Fatalf("p95 = %g", s.P95)
	}
	if s.P99 != 99.01 {
		t.Fatalf("p99 = %g", s.P99)
	}
}

func TestSummarizeSingleValue(t *testing.T) {
	s := Summarize([]float64{7})
	if s.P50 != 7 || s.P95 != 7 || s.P99 != 7 || s.Mean != 7 {
		t.Fatalf("single-value summary = %+v", s)
	}
}

func TestSeriesSummary(t *testing.T) {
	s := &Series{Name: "lat", Unit: "ms"}
	for i := 1; i <= 10; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i))
	}
	sum := s.Summary()
	if sum.Count != 10 || sum.P50 != 5.5 || sum.Max != 10 {
		t.Fatalf("series summary = %+v", sum)
	}
}

func TestSummaryString(t *testing.T) {
	str := Summarize([]float64{1, 2, 3}).String()
	for _, want := range []string{"n=3", "p50=2", "p99="} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() = %q missing %q", str, want)
		}
	}
}
