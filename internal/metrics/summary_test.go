package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizePercentiles(t *testing.T) {
	// 1..100: the percentiles land on interpolated ranks.
	vs := make([]float64, 100)
	for i := range vs {
		vs[i] = float64(i + 1)
	}
	s := Summarize(vs)
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("bounds: %+v", s)
	}
	if s.Mean != 50.5 {
		t.Fatalf("mean = %g", s.Mean)
	}
	if s.P50 != 50.5 {
		t.Fatalf("p50 = %g", s.P50)
	}
	if s.P95 <= s.P50 || s.P99 <= s.P95 || s.P99 > s.Max {
		t.Fatalf("percentiles not ordered: %+v", s)
	}
	// Exact values for the interpolation: rank = p/100*(n-1).
	if s.P95 != 95.05 {
		t.Fatalf("p95 = %g", s.P95)
	}
	if s.P99 != 99.01 {
		t.Fatalf("p99 = %g", s.P99)
	}
}

func TestSummarizeSingleValue(t *testing.T) {
	s := Summarize([]float64{7})
	if s.P50 != 7 || s.P95 != 7 || s.P99 != 7 || s.Mean != 7 {
		t.Fatalf("single-value summary = %+v", s)
	}
}

func TestSeriesSummary(t *testing.T) {
	s := &Series{Name: "lat", Unit: "ms"}
	for i := 1; i <= 10; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i))
	}
	sum := s.Summary()
	if sum.Count != 10 || sum.P50 != 5.5 || sum.Max != 10 {
		t.Fatalf("series summary = %+v", sum)
	}
}

func TestSummaryString(t *testing.T) {
	str := Summarize([]float64{1, 2, 3}).String()
	for _, want := range []string{"n=3", "p50=2", "p99="} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() = %q missing %q", str, want)
		}
	}
}
