package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesAddAt(t *testing.T) {
	s := &Series{Name: "qps"}
	s.Add(0, 10)
	s.Add(time.Second, 20)
	s.Add(2*time.Second, 30)
	if s.At(0) != 10 || s.At(1500*time.Millisecond) != 20 || s.At(5*time.Second) != 30 {
		t.Fatal("At() lookup wrong")
	}
	if s.At(-time.Second) != 0 {
		t.Fatal("At before first sample not 0")
	}
}

func TestSeriesAddOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Add did not panic")
		}
	}()
	s := &Series{}
	s.Add(time.Second, 1)
	s.Add(0, 2)
}

func TestSeriesWindowValues(t *testing.T) {
	s := &Series{}
	for i := 0; i < 10; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i))
	}
	w := s.Window(2*time.Second, 5*time.Second)
	if len(w) != 3 || w[0].V != 2 || w[2].V != 4 {
		t.Fatalf("window = %v", w)
	}
	if len(s.Values()) != 10 {
		t.Fatal("Values length wrong")
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	vs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(vs); m != 5 {
		t.Fatalf("Mean = %v", m)
	}
	if sd := StdDev(vs); sd < 1.99 || sd > 2.01 {
		t.Fatalf("StdDev = %v, want 2", sd)
	}
	if StdDev([]float64{1}) != 0 {
		t.Fatal("StdDev single element != 0")
	}
}

func TestPercentile(t *testing.T) {
	vs := []float64{1, 2, 3, 4, 5}
	if Percentile(vs, 0) != 1 || Percentile(vs, 100) != 5 || Percentile(vs, 50) != 3 {
		t.Fatal("percentiles wrong")
	}
	if p := Percentile(vs, 25); p != 2 {
		t.Fatalf("p25 = %v", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("Percentile(nil) != 0")
	}
}

func TestBox(t *testing.T) {
	b := Box([]float64{5, 1, 3, 2, 4})
	if b.Min != 1 || b.Median != 3 || b.Max != 5 {
		t.Fatalf("box = %+v", b)
	}
	if !strings.Contains(b.String(), "med=3") {
		t.Fatal("box string wrong")
	}
}

func TestDurations(t *testing.T) {
	vs := Durations([]time.Duration{time.Second, 500 * time.Millisecond})
	if vs[0] != 1 || vs[1] != 0.5 {
		t.Fatalf("Durations = %v", vs)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "Demo", Headers: []string{"name", "value"}}
	tab.AddRow("alpha", "1")
	tab.AddRow("beta-long", "22")
	out := tab.Render()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "beta-long") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("render lines = %d, want 5", len(lines))
	}
}

func TestRenderSeries(t *testing.T) {
	s := &Series{Name: "qps", Unit: "k"}
	for i := 0; i <= 10; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i%4+1))
	}
	out := RenderSeries(40, 8, s)
	if !strings.Contains(out, "qps") || !strings.Contains(out, "*") {
		t.Fatalf("plot missing content:\n%s", out)
	}
	if RenderSeries(40, 8) != "" {
		t.Fatal("empty series list rendered something")
	}
	if RenderSeries(2, 1, s) != "" {
		t.Fatal("tiny canvas rendered something")
	}
}

// Property: Percentile is monotonic in p and bounded by min/max.
func TestPropertyPercentileMonotonic(t *testing.T) {
	f := func(raw []float64, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if v != v || v > 1e300 || v < -1e300 { // NaN/Inf guard
				return true
			}
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		pa, pb := Percentile(raw, a), Percentile(raw, b)
		return pa <= pb && pa >= Percentile(raw, 0) && pb <= Percentile(raw, 100)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
