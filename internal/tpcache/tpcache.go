// Package tpcache is the transplant cache: the warm-path subsystem that
// makes repeat transplants cheap. It memoizes the two expensive
// wall-clock products of the InPlaceTP workflow —
//
//   - encoded UISR translation blobs, keyed by (source kind, VM state
//     fingerprint), so a host ping-ponging between hypervisor kinds
//     stops re-walking and re-encoding identical platform state;
//   - built PRAM metadata structures, via pram.Snapshot, so repeat
//     builds of an identical fileset replay cached page images.
//
// The cache is deterministic by construction: a hit returns the exact
// bytes a cold run would produce (fingerprints chain through the blobs
// themselves — see the fingerprint notes on RecordRestore), and virtual
// time is charged by the engine identically on hit and miss. Caching is
// therefore invisible in reports, guest checksums, and span trees; only
// wall-clock time and the hit counters change.
//
// A nil *Cache disables caching everywhere it is consulted.
package tpcache

import (
	"fmt"
	"hash/crc64"
	"sync"

	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/pram"
)

// Stats is a point-in-time census of cache effectiveness.
type Stats struct {
	// Hits and Misses count translation-cache lookups by outcome.
	Hits, Misses uint64
	// WarmStarts counts hits served from entries pre-staged by the warm
	// pool (orchestrator.WarmPool) rather than left by a prior
	// transplant.
	WarmStarts uint64
	// Stale counts entries poisoned by the cache.stale fault site and
	// discarded at lookup.
	Stale uint64
	// PRAMHits and PRAMMisses count PRAM snapshot replays vs cold
	// builds.
	PRAMHits, PRAMMisses uint64
	// WarmSlots is the number of pre-staged entries currently unconsumed.
	WarmSlots int
}

// String renders the census compactly.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d (ratio %.2f) warm-starts=%d stale=%d pram=%d/%d warm-slots=%d",
		s.Hits, s.Misses, s.HitRatio(), s.WarmStarts, s.Stale,
		s.PRAMHits, s.PRAMHits+s.PRAMMisses, s.WarmSlots)
}

// Sub returns the counter deltas since prev — the activity of one
// window (e.g. one transplant cycle) on a long-lived cache. WarmSlots
// is a gauge, not a counter, so the current value is kept as-is.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Hits:       s.Hits - prev.Hits,
		Misses:     s.Misses - prev.Misses,
		WarmStarts: s.WarmStarts - prev.WarmStarts,
		Stale:      s.Stale - prev.Stale,
		PRAMHits:   s.PRAMHits - prev.PRAMHits,
		PRAMMisses: s.PRAMMisses - prev.PRAMMisses,
		WarmSlots:  s.WarmSlots,
	}
}

// HitRatio returns hits over lookups (0 when there were none).
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

type blobKey struct {
	kind hv.Kind
	fp   uint64
}

type blobEntry struct {
	blob []byte
	hash uint64
	warm bool
}

// machineFPs tracks the VM-state fingerprints of one machine's current
// boot generation. A generation bump (micro-reboot) invalidates all of
// them at once.
type machineFPs struct {
	gen  int
	byVM map[hv.VMID]uint64
}

// maxBlobEntries bounds the translation cache; in steady state a
// ping-ponging host needs two entries per VM (one per direction), so
// this is far above any fleet this simulation runs — it exists to keep
// long chaos soaks from growing without bound. Eviction is FIFO in
// insertion order, which is deterministic.
const maxBlobEntries = 4096

// Cache is a shared transplant cache. One Cache may serve many engines
// and machines (the fleet case); all methods are safe for concurrent
// use.
type Cache struct {
	mu        sync.Mutex
	blobs     map[blobKey]*blobEntry
	order     []blobKey
	fps       map[*hw.Machine]*machineFPs
	snaps     map[*hw.Machine]*pram.Snapshot
	places    map[*hw.Machine]*blobPlaces
	warmSlots int
	stats     Stats
}

// blobPlaces remembers where each blob (by content hash) last landed in
// one machine's physical memory, so a repeat transplant can re-write it
// at the same frames — which keeps the PRAM fileset byte-stable and lets
// the pram.Snapshot replay fire.
type blobPlaces struct {
	byHash map[uint64][]hw.MFN
	order  []uint64
}

// New creates an empty transplant cache.
func New() *Cache {
	return &Cache{
		blobs:  make(map[blobKey]*blobEntry),
		fps:    make(map[*hw.Machine]*machineFPs),
		snaps:  make(map[*hw.Machine]*pram.Snapshot),
		places: make(map[*hw.Machine]*blobPlaces),
	}
}

var crcTable = crc64.MakeTable(crc64.ECMA)

// BlobHash fingerprints an encoded UISR blob.
func BlobHash(blob []byte) uint64 {
	return crc64.Checksum(blob, crcTable) ^ uint64(len(blob))<<32
}

func mix(h, v uint64) uint64 {
	h ^= v + 0x9e3779b97f4a7c15 + (h << 12) + (h >> 4)
	h *= 0xff51afd7ed558ccd
	return h
}

// fingerprint derives the state fingerprint of a VM restored from (or,
// for the tag "fresh", first saved as) the blob with the given hash.
func fingerprint(tag uint64, kind hv.Kind, id hv.VMID, blobHash uint64) uint64 {
	h := mix(tag, uint64(kind))
	h = mix(h, uint64(id))
	return mix(h, blobHash)
}

const (
	tagFresh    = 0xf4e5
	tagRestored = 0x4e57
)

func (c *Cache) ensureFPs(m *hw.Machine, gen int) *machineFPs {
	e := c.fps[m]
	if e == nil || e.gen != gen {
		e = &machineFPs{gen: gen, byVM: make(map[hv.VMID]uint64)}
		c.fps[m] = e
	}
	return e
}

// LookupTranslation returns the cached UISR blob for VM id on machine m
// at boot generation gen, if its state fingerprint is known and an
// encoding of that exact state is cached. warm reports whether the entry
// was pre-staged by the warm pool (the flag is consumed by the lookup).
func (c *Cache) LookupTranslation(kind hv.Kind, m *hw.Machine, gen int, id hv.VMID) (blob []byte, blobHash uint64, warm, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.fps[m]
	if e == nil || e.gen != gen {
		c.stats.Misses++
		return nil, 0, false, false
	}
	fp, known := e.byVM[id]
	if !known {
		c.stats.Misses++
		return nil, 0, false, false
	}
	be := c.blobs[blobKey{kind, fp}]
	if be == nil {
		c.stats.Misses++
		return nil, 0, false, false
	}
	c.stats.Hits++
	warm = be.warm
	if warm {
		be.warm = false
		c.warmSlots--
		c.stats.WarmStarts++
	}
	return be.blob, be.hash, warm, true
}

// HasTranslation reports whether a lookup for the VM would hit, without
// consuming the warm flag or touching the counters. The warm pool uses
// it to skip VMs that are already staged.
func (c *Cache) HasTranslation(kind hv.Kind, m *hw.Machine, gen int, id hv.VMID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.fps[m]
	if e == nil || e.gen != gen {
		return false
	}
	fp, known := e.byVM[id]
	if !known {
		return false
	}
	return c.blobs[blobKey{kind, fp}] != nil
}

// StoreTranslation records a freshly encoded blob under the VM's current
// fingerprint (deriving and recording a fresh-state fingerprint when
// none is known), and returns the blob's hash. warm marks the entry as
// pre-staged by the warm pool.
func (c *Cache) StoreTranslation(kind hv.Kind, m *hw.Machine, gen int, id hv.VMID, blob []byte, warm bool) uint64 {
	h := BlobHash(blob)
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.ensureFPs(m, gen)
	fp, known := e.byVM[id]
	if !known {
		fp = fingerprint(tagFresh, kind, id, h)
		e.byVM[id] = fp
	}
	key := blobKey{kind, fp}
	if old := c.blobs[key]; old == nil {
		c.order = append(c.order, key)
		if len(c.order) > maxBlobEntries {
			c.dropLocked(c.order[0])
			c.order = c.order[1:]
		}
	} else if old.warm {
		c.warmSlots--
	}
	c.blobs[key] = &blobEntry{blob: blob, hash: h, warm: warm}
	if warm {
		c.warmSlots++
	}
	return h
}

func (c *Cache) dropLocked(key blobKey) {
	if e := c.blobs[key]; e != nil && e.warm {
		c.warmSlots--
	}
	delete(c.blobs, key)
}

// RecordRestore chains the fingerprint forward: the VM restored as
// newID on machine m (now at boot generation gen) carries exactly the
// platform state encoded in the blob with hash blobHash, so its next
// save under any source kind is keyed by a fingerprint derived from
// that hash. After one ping-pong cycle the save∘restore chain reaches a
// fixed point and every subsequent lookup hits. The fingerprint is a
// pure function of blob content and restore identity — independent of
// wall clock, worker count, and fault seed — which is what makes cached
// and cold runs byte-identical.
func (c *Cache) RecordRestore(target hv.Kind, m *hw.Machine, gen int, newID hv.VMID, blobHash uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.ensureFPs(m, gen)
	e.byVM[newID] = fingerprint(tagRestored, target, newID, blobHash)
}

// Invalidate poisons the cached translation for VM id: the blob entry is
// dropped (the fingerprint survives, so the next cold save re-populates
// it). This is the cache.stale fault-injection hook.
func (c *Cache) Invalidate(kind hv.Kind, m *hw.Machine, gen int, id hv.VMID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.fps[m]
	if e == nil || e.gen != gen {
		return
	}
	fp, known := e.byVM[id]
	if !known {
		return
	}
	key := blobKey{kind, fp}
	if c.blobs[key] == nil {
		return
	}
	c.dropLocked(key)
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.stats.Stale++
}

// BlobFrames returns the frames the blob with the given content hash
// occupied the last time it was written into machine m's memory, or nil
// if unknown.
func (c *Cache) BlobFrames(m *hw.Machine, hash uint64) []hw.MFN {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.places[m]
	if p == nil {
		return nil
	}
	return p.byHash[hash]
}

// SetBlobFrames records where the blob with the given content hash was
// written on machine m.
func (c *Cache) SetBlobFrames(m *hw.Machine, hash uint64, frames []hw.MFN) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.places[m]
	if p == nil {
		p = &blobPlaces{byHash: make(map[uint64][]hw.MFN)}
		c.places[m] = p
	}
	if _, exists := p.byHash[hash]; !exists {
		p.order = append(p.order, hash)
		if len(p.order) > maxBlobEntries {
			delete(p.byHash, p.order[0])
			p.order = p.order[1:]
		}
	}
	p.byHash[hash] = append([]hw.MFN(nil), frames...)
}

// PRAMSnapshot returns machine m's PRAM build snapshot, creating it on
// first use.
func (c *Cache) PRAMSnapshot(m *hw.Machine) *pram.Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.snaps[m]
	if s == nil {
		s = pram.NewSnapshot()
		c.snaps[m] = s
	}
	return s
}

// WarmSlots reports the number of pre-staged, unconsumed warm entries.
func (c *Cache) WarmSlots() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.warmSlots
}

// Stats returns a snapshot of the cache counters, with the per-machine
// PRAM snapshot counters folded in.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	out := c.stats
	out.WarmSlots = c.warmSlots
	snaps := make([]*pram.Snapshot, 0, len(c.snaps))
	for _, s := range c.snaps {
		snaps = append(snaps, s)
	}
	c.mu.Unlock()
	for _, s := range snaps {
		h, m := s.Stats()
		out.PRAMHits += h
		out.PRAMMisses += m
	}
	return out
}
