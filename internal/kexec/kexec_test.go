package kexec

import (
	"testing"

	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/pram"
	"hypertp/internal/simtime"
	"hypertp/internal/uisr"
)

func newMachine() *hw.Machine {
	return hw.NewMachine(simtime.NewClock(), hw.M1())
}

func TestLoadImage(t *testing.T) {
	m := newMachine()
	img, err := Load(m, hv.KindKVM)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bytes != KVMImageBytes {
		t.Fatalf("image size = %d", img.Bytes)
	}
	counts := m.Mem.CountByOwner()
	if counts[hw.OwnerKexecImage] != KVMImageBytes/hw.PageSize4K {
		t.Fatalf("image frames = %d", counts[hw.OwnerKexecImage])
	}
	got, err := m.Mem.Read(img.Ranges[0].Start, 0, 15)
	if err != nil || string(got) != "KEXEC-IMAGE:kvm" {
		t.Fatalf("stamp = %q, %v", got, err)
	}
}

func TestXenImageLargerThanKVM(t *testing.T) {
	// The Xen payload carries two kernels (hypervisor + dom0) — the
	// asymmetry behind Fig. 10.
	if XenImageBytes <= KVMImageBytes {
		t.Fatal("Xen image not larger than KVM image")
	}
}

func TestLoadRejectsUnknownKind(t *testing.T) {
	if _, err := Load(newMachine(), hv.Kind(99)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestUnload(t *testing.T) {
	m := newMachine()
	before := m.Mem.AllocatedFrames()
	img, _ := Load(m, hv.KindXen)
	if err := img.Unload(m); err != nil {
		t.Fatal(err)
	}
	if m.Mem.AllocatedFrames() != before {
		t.Fatal("image frames leaked")
	}
	if err := img.Unload(m); err == nil {
		t.Fatal("double unload accepted")
	}
}

func TestCmdlineRoundTrip(t *testing.T) {
	cmdline := FormatCmdline(hw.MFN(0x1234))
	ptr, err := ParseCmdline(cmdline)
	if err != nil {
		t.Fatal(err)
	}
	if ptr != 0x1234 {
		t.Fatalf("ptr = %#x", uint64(ptr))
	}
}

func TestParseCmdlineErrors(t *testing.T) {
	if _, err := ParseCmdline("console=ttyS0"); err == nil {
		t.Fatal("missing pram param accepted")
	}
	if _, err := ParseCmdline("pram=zzz"); err == nil {
		t.Fatal("garbage pram value accepted")
	}
}

func TestExecWithoutImageFails(t *testing.T) {
	m := newMachine()
	if _, err := Exec(m, nil, 0, nil); err == nil {
		t.Fatal("Exec without image accepted")
	}
	img, _ := Load(m, hv.KindKVM)
	img.Unload(m)
	if _, err := Exec(m, img, 0, nil); err == nil {
		t.Fatal("Exec with unloaded image accepted")
	}
}

// The full preservation contract: guest memory recorded in PRAM survives
// the reboot bit-for-bit; everything else is wiped.
func TestExecPreservationContract(t *testing.T) {
	m := newMachine()

	// HV state that must die.
	hvFrames, _ := m.Mem.Alloc(100, hw.OwnerHV, -1)
	m.Mem.Write(hvFrames[0], 0, []byte("hypervisor secret"))

	// Guest memory that must survive.
	base, err := m.Mem.Alloc2M(hw.OwnerGuest, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Mem.Write(base+7, 123, []byte("precious guest bytes"))
	sumBefore, _ := m.Mem.Checksum(base + 7)

	// A guest frame NOT recorded in PRAM: must be wiped (the contract
	// is explicit preservation, not owner-tag based).
	orphan, _ := m.Mem.Alloc(1, hw.OwnerGuest, 2)
	m.Mem.Write(orphan[0], 0, []byte("forgotten"))

	ps, err := pram.Build(m.Mem, []pram.File{{
		Name: "vm1", VMID: 1,
		Extents: []uisr.PageExtent{{GFN: 0, MFN: uint64(base), Order: 9}},
	}}, pram.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	img, _ := Load(m, hv.KindKVM)
	res, err := Exec(m, img, ps.Pointer, ps.FrameRanges())
	if err != nil {
		t.Fatal(err)
	}
	if res.WipedFrames == 0 {
		t.Fatal("nothing wiped")
	}
	if m.Generation() != 1 {
		t.Fatalf("generation = %d", m.Generation())
	}

	// Guest bytes intact.
	sumAfter, err := m.Mem.Checksum(base + 7)
	if err != nil || sumAfter != sumBefore {
		t.Fatalf("guest frame corrupted: %v", err)
	}
	// HV state gone.
	if _, err := m.Mem.Read(hvFrames[0], 0, 1); err == nil {
		t.Fatal("HV frame survived")
	}
	// Orphan guest frame gone — PRAM is the source of truth.
	if _, err := m.Mem.Read(orphan[0], 0, 1); err == nil {
		t.Fatal("unrecorded guest frame survived")
	}
	// PRAM metadata itself must survive so the new kernel can parse it.
	ptr, err := ParseCmdline(m.Cmdline)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := pram.Parse(m.Mem, ptr)
	if err != nil {
		t.Fatalf("PRAM lost across reboot: %v", err)
	}
	if len(parsed.Files) != 1 || parsed.Files[0].Name != "vm1" {
		t.Fatal("PRAM content wrong after reboot")
	}
	// Image frames were retagged as HV state for the new kernel.
	if owner, _ := m.Mem.OwnerOf(img.Ranges[0].Start); owner != hw.OwnerHV {
		t.Fatalf("image frame owner = %v after boot", owner)
	}
}

func TestExecPreservedFramesAccounting(t *testing.T) {
	m := newMachine()
	base, _ := m.Mem.Alloc2M(hw.OwnerGuest, 1)
	ps, err := pram.Build(m.Mem, []pram.File{{
		Name: "vm", VMID: 1,
		Extents: []uisr.PageExtent{{GFN: 0, MFN: uint64(base), Order: 9}},
	}}, pram.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	img, _ := Load(m, hv.KindKVM)
	res, err := Exec(m, img, ps.Pointer, ps.FrameRanges())
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(hw.FramesPer2M) + uint64(len(ps.MetaFrames)) + KVMImageBytes/hw.PageSize4K
	if res.PreservedFrames != want {
		t.Fatalf("preserved = %d frames, want %d", res.PreservedFrames, want)
	}
}
