// Package kexec models the micro-reboot mechanism of §4.2.4: booting a
// new kernel (the target hypervisor) on top of the running system without
// reinitializing hardware, while preserving explicitly-reserved memory.
//
// The contract enforced here is the paper's: the target image is loaded
// into RAM ahead of time (Fig. 3 ❶), the reboot wipes every frame that is
// neither the image nor covered by the PRAM preserve set (Fig. 3 ❹), and
// the PRAM pointer is handed to the new kernel on its boot command line.
// If the PRAM structure failed to record a guest frame, that frame is
// gone after Exec — which is exactly what the integrity property tests
// check.
package kexec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hypertp/internal/hv"
	"hypertp/internal/hw"
)

// Image sizes of the preloaded kernels. The Xen payload is bigger because
// it carries two kernels: the hypervisor and the dom0 Linux (§5.2.2's
// explanation for the KVM→Xen boot cost).
const (
	KVMImageBytes  = 24 << 20 // bzImage + initramfs + kvmtool
	XenImageBytes  = 40 << 20 // xen.gz + dom0 bzImage + initramfs
	NOVAImageBytes = 8 << 20  // microhypervisor + root task
)

// Image is a target-hypervisor kernel image preloaded into RAM. Its
// frames are tracked as coalesced ranges — the image is only ever held
// whole and released whole, so per-frame bookkeeping would be waste.
type Image struct {
	Target hv.Kind
	Ranges []hw.FrameRange
	Bytes  uint64
	loaded bool
}

// Load stages the target hypervisor's image into physical memory
// (Fig. 3 ❶). It can run long before the transplant, while VMs execute.
func Load(m *hw.Machine, target hv.Kind) (*Image, error) {
	var size uint64
	switch target {
	case hv.KindXen:
		size = XenImageBytes
	case hv.KindKVM:
		size = KVMImageBytes
	case hv.KindNOVA:
		size = NOVAImageBytes
	default:
		return nil, fmt.Errorf("kexec: unknown target kind %v", target)
	}
	ranges, err := m.Mem.AllocRanges(int(size/hw.PageSize4K), hw.OwnerKexecImage, -1)
	if err != nil {
		return nil, fmt.Errorf("kexec: image load: %w", err)
	}
	// Stamp the first page so a post-reboot check can verify the image
	// survived intact.
	stamp := []byte("KEXEC-IMAGE:" + target.String())
	if err := m.Mem.Write(ranges[0].Start, 0, stamp); err != nil {
		return nil, err
	}
	return &Image{Target: target, Ranges: ranges, Bytes: size, loaded: true}, nil
}

// Unload releases a staged image without rebooting (an aborted
// transplant).
func (img *Image) Unload(m *hw.Machine) error {
	if !img.loaded {
		return fmt.Errorf("kexec: image not loaded")
	}
	for _, r := range img.Ranges {
		if err := m.Mem.FreeRange(r.Start, r.Count); err != nil {
			return err
		}
	}
	img.loaded = false
	return nil
}

// CmdlineKey is the boot parameter carrying the PRAM pointer.
const CmdlineKey = "pram"

// FormatCmdline builds the target kernel command line embedding the PRAM
// pointer (0 means "no preserved memory").
func FormatCmdline(pramPtr hw.MFN) string {
	return fmt.Sprintf("console=ttyS0 %s=0x%x", CmdlineKey, uint64(pramPtr))
}

// ParseCmdline extracts the PRAM pointer from a boot command line.
func ParseCmdline(cmdline string) (hw.MFN, error) {
	for _, field := range strings.Fields(cmdline) {
		k, v, ok := strings.Cut(field, "=")
		if !ok || k != CmdlineKey {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimPrefix(v, "0x"), 16, 64)
		if err != nil {
			return 0, fmt.Errorf("kexec: bad %s value %q: %w", CmdlineKey, v, err)
		}
		return hw.MFN(n), nil
	}
	return 0, fmt.Errorf("kexec: no %s parameter in cmdline %q", CmdlineKey, cmdline)
}

// Result reports what the micro-reboot did.
type Result struct {
	WipedFrames     int
	PreservedFrames uint64
}

// Exec performs the micro-reboot (Fig. 3 ❹): every frame outside the
// image and the preserve set is wiped, the boot generation is bumped, and
// the command line with the PRAM pointer is installed. The caller then
// boots the target hypervisor (xen.Boot / kvm.Boot) and parses PRAM.
//
// Exec charges no virtual time itself; boot latency is the transplant
// engine's job because it depends on the machine profile and the
// preserved-memory volume.
func Exec(m *hw.Machine, img *Image, pramPtr hw.MFN, preserve []hw.FrameRange) (*Result, error) {
	if img == nil || !img.loaded {
		return nil, fmt.Errorf("kexec: target image not loaded")
	}
	// The image frames themselves survive: they are the new kernel.
	keep := make([]hw.FrameRange, 0, len(preserve)+len(img.Ranges))
	keep = append(keep, preserve...)
	keep = append(keep, img.Ranges...)
	keep = mergeRanges(keep)
	var preserved uint64
	for _, r := range keep {
		preserved += r.Count
	}

	wiped := m.MicroReboot(FormatCmdline(pramPtr), keep)
	// The image frames become part of the running kernel: retag them as
	// HV State so the next transplant's wipe reclaims them.
	for _, r := range img.Ranges {
		if err := m.Mem.SetOwnerRange(r.Start, r.Count, hw.OwnerHV, -1); err != nil {
			return nil, err
		}
	}
	img.loaded = false
	return &Result{WipedFrames: wiped, PreservedFrames: preserved}, nil
}

func mergeRanges(in []hw.FrameRange) []hw.FrameRange {
	if len(in) == 0 {
		return in
	}
	out := make([]hw.FrameRange, len(in))
	copy(out, in)
	sortRanges(out)
	merged := out[:1]
	for _, r := range out[1:] {
		last := &merged[len(merged)-1]
		if last.Start+hw.MFN(last.Count) >= r.Start {
			end := r.Start + hw.MFN(r.Count)
			if end > last.Start+hw.MFN(last.Count) {
				last.Count = uint64(end - last.Start)
			}
			continue
		}
		merged = append(merged, r)
	}
	return merged
}

func sortRanges(rs []hw.FrameRange) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Start < rs[j].Start })
}
