package calib

import (
	"strings"
	"testing"

	"hypertp/internal/hw"
)

// TestCalibAnchors is the calibration gate: every catalogue assertion
// must hold on the stock profiles. `make calib-check` runs this.
func TestCalibAnchors(t *testing.T) {
	as, err := Assertions()
	if err != nil {
		t.Fatal(err)
	}
	if len(as) < 14 {
		t.Fatalf("catalogue shrank to %d assertions", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Source == "" {
			t.Fatalf("assertion missing name or source: %+v", a)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate assertion name %s", a.Name)
		}
		seen[a.Name] = true
		if err := a.Err(); err != nil {
			t.Error(err)
		}
	}
	if errs := Check(); len(errs) != 0 {
		t.Fatalf("Check disagrees with the per-assertion pass: %v", errs)
	}
}

// TestCalibDetectsPerturbation is the negative half of the gate: a cost
// constant perturbed beyond tolerance must trip at least one named
// assertion. Without this, a broken catalogue that vacuously passes
// would go unnoticed.
func TestCalibDetectsPerturbation(t *testing.T) {
	cases := []struct {
		name    string
		perturb func(m1, m2 *hw.Profile)
		expect  string // assertion name fragment that must appear in a failure
	}{
		{"translate-per-vm +50% (M1)", func(m1, _ *hw.Profile) {
			m1.Cost.TranslatePerVM = m1.Cost.TranslatePerVM * 3 / 2
		}, "fig6/m1/translate"},
		{"boot-xen-dom0 2x (M1)", func(m1, _ *hw.Profile) {
			m1.Cost.BootXenDom0 *= 2
		}, "fig10/m1/kvm-to-xen"},
		{"restore-per-vm halved (M2)", func(_, m2 *hw.Profile) {
			m2.Cost.RestorePerVM /= 2
		}, "fig6/m2/restore"},
		{"nic-reinit 2x (M1)", func(m1, _ *hw.Profile) {
			m1.Cost.NICReinit *= 2
		}, "fig12/m1/nic-reinit"},
		{"mig-finalize-xen 3x", func(m1, _ *hw.Profile) {
			m1.Cost.MigFinalizeXen *= 3
		}, "table4/finalize-ratio"},
		{"boot-linux-kvm 2x (M1)", func(m1, _ *hw.Profile) {
			m1.Cost.BootLinuxKVM *= 2
		}, "fig6/m1/downtime"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m1, m2 := hw.M1(), hw.M2()
			tc.perturb(m1, m2)
			as, err := For(m1, m2)
			if err != nil {
				t.Fatal(err)
			}
			var failed []string
			for _, a := range as {
				if a.Err() != nil {
					failed = append(failed, a.Name)
				}
			}
			if len(failed) == 0 {
				t.Fatal("perturbed cost constant slipped through the calibration gate")
			}
			if !strings.Contains(strings.Join(failed, " "), tc.expect) {
				t.Fatalf("expected %s among failures, got %v", tc.expect, failed)
			}
		})
	}
}

// TestCalibTolerances pins the tolerance tiers themselves: widening
// them quietly would defeat the gate.
func TestCalibTolerances(t *testing.T) {
	if formulaTol > 0.02 {
		t.Fatalf("formula tolerance widened to %v", formulaTol)
	}
	if measuredTol > 0.12 {
		t.Fatalf("measured tolerance widened to %v", measuredTol)
	}
	if ratioTol > 0.15 {
		t.Fatalf("ratio tolerance widened to %v", ratioTol)
	}
	a := Assertion{Name: "probe", Source: "test", Got: 120, Want: 100, Unit: "ms", Tol: 0.1}
	if err := a.Err(); err == nil {
		t.Fatal("20% deviation passed a 10% tolerance")
	} else if !strings.Contains(err.Error(), "probe") || !strings.Contains(err.Error(), "test") {
		t.Fatalf("diagnostic missing name or source: %v", err)
	}
	a.Got = 105
	if err := a.Err(); err != nil {
		t.Fatalf("5%% deviation failed a 10%% tolerance: %v", err)
	}
}
