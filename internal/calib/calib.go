// Package calib pins the simulator's timing model to the paper's
// published figure shapes as a declarative catalogue of tolerance
// assertions. Each assertion compares a value the repo computes — a
// CostModel formula (hw/cost.go, the same arithmetic the engine
// charges) or a phase duration measured from a real engine run —
// against the number printed in the paper, within a stated fractional
// tolerance. `make calib-check` evaluates the catalogue; a cost
// constant drifting beyond tolerance turns into a named, sourced
// failure instead of a silent figure-shape regression.
package calib

import (
	"fmt"
	"math"
	"time"

	"hypertp/internal/core"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/simtime"
)

// Assertion is one calibration claim: Got must be within Tol (a
// fraction) of Want. Unit is display-only ("ms" or "x" for ratios).
type Assertion struct {
	Name   string  // stable id, e.g. "fig6/m1/translate"
	Source string  // the paper anchor the numbers come from
	Got    float64 // what the repo computes or measures
	Want   float64 // what the paper prints
	Unit   string
	Tol    float64
}

// Err returns nil when the assertion holds, or a diagnostic carrying
// the deviation and the paper source.
func (a Assertion) Err() error {
	dev := math.Abs(a.Got-a.Want) / math.Abs(a.Want)
	if dev <= a.Tol {
		return nil
	}
	return fmt.Errorf("calib: %s = %.4g%s, want %.4g%s ±%.0f%% (off by %.1f%%; anchor: %s)",
		a.Name, a.Got, a.Unit, a.Want, a.Unit, a.Tol*100, dev*100, a.Source)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Tolerance tiers: formulas must land almost exactly on the printed
// figure values (the paper rounds to 10 ms); end-to-end measured runs
// inherit modelling slack from phase overlap and parallelism.
const (
	formulaTol  = 0.02
	measuredTol = 0.12
	ratioTol    = 0.15
)

// measure boots a 1 vCPU / 1 GiB VM (the paper's Fig. 6 unit tenant)
// on `from` and transplants it in place to `to` under the optimized
// default options, returning the phase report.
func measure(prof *hw.Profile, from, to hv.Kind) (*core.InPlaceReport, error) {
	clock := simtime.NewClock()
	engine := core.NewEngine(clock, hw.NewMachine(clock, prof))
	src, err := engine.BootHypervisor(from)
	if err != nil {
		return nil, err
	}
	if _, err := src.CreateVM(hv.Config{
		Name: "calib-vm", VCPUs: 1, MemBytes: 1 << 30,
		HugePages: true, Seed: 1, InPlaceCompatible: true,
	}); err != nil {
		return nil, err
	}
	_, rep, err := engine.InPlace(src, to, core.DefaultOptions())
	return rep, err
}

// For builds the calibration catalogue against the given machine
// profiles. Passing perturbed profiles is how the negative test proves
// the gate actually fires.
func For(m1, m2 *hw.Profile) ([]Assertion, error) {
	const gib = 1 << 30
	c1, c2 := &m1.Cost, &m2.Cost

	// Formula anchors: the per-phase costs of the Fig. 6 unit tenant,
	// computed by the exact CostModel methods the engine charges.
	as := []Assertion{
		{Name: "fig6/m1/pram-build", Source: "Fig. 6 (machine 1): PRAM construction 0.45 s",
			Got: ms(c1.PRAMBuild(gib, true)), Want: 450, Unit: "ms", Tol: formulaTol},
		{Name: "fig6/m1/translate", Source: "Fig. 6 (machine 1): state translation 0.08 s",
			Got: ms(c1.Translate(1, gib)), Want: 80, Unit: "ms", Tol: formulaTol},
		{Name: "fig6/m1/restore", Source: "Fig. 6 (machine 1): state restoration 0.12 s",
			Got: ms(c1.Restore(1)), Want: 120, Unit: "ms", Tol: formulaTol},
		{Name: "fig6/m2/pram-build", Source: "Fig. 6 (machine 2): PRAM construction 0.50 s",
			Got: ms(c2.PRAMBuild(gib, true)), Want: 500, Unit: "ms", Tol: formulaTol},
		{Name: "fig6/m2/translate", Source: "Fig. 6 (machine 2): state translation 0.24 s",
			Got: ms(c2.Translate(1, gib)), Want: 240, Unit: "ms", Tol: formulaTol},
		{Name: "fig6/m2/restore", Source: "Fig. 6 (machine 2): state restoration 0.34 s",
			Got: ms(c2.Restore(1)), Want: 340, Unit: "ms", Tol: formulaTol},
		{Name: "fig12/m1/nic-reinit", Source: "Fig. 12 (machine 1): NIC reinitialization 6.6 s",
			Got: ms(c1.NICReinit), Want: 6600, Unit: "ms", Tol: formulaTol},
		{Name: "fig12/m2/nic-reinit", Source: "Fig. 12 (machine 2): NIC reinitialization 2.3 s",
			Got: ms(c2.NICReinit), Want: 2300, Unit: "ms", Tol: formulaTol},
		{Name: "table4/finalize-ratio", Source: "Table 4: Xen restore ~27x kvmtool finalize",
			Got:  float64(c1.MigFinalize(true, 1)) / float64(c1.MigFinalize(false, 1)),
			Want: 27, Unit: "x", Tol: ratioTol},
	}

	// Measured anchors: end-to-end engine runs of the same unit tenant.
	m1Rep, err := measure(m1, hv.KindXen, hv.KindKVM)
	if err != nil {
		return nil, fmt.Errorf("calib: M1 Xen→KVM run: %w", err)
	}
	m2Rep, err := measure(m2, hv.KindXen, hv.KindKVM)
	if err != nil {
		return nil, fmt.Errorf("calib: M2 Xen→KVM run: %w", err)
	}
	m1Rev, err := measure(m1, hv.KindKVM, hv.KindXen)
	if err != nil {
		return nil, fmt.Errorf("calib: M1 KVM→Xen run: %w", err)
	}
	as = append(as,
		Assertion{Name: "fig6/m1/downtime", Source: "§5.2.1: InPlaceTP Xen→KVM downtime ~1.7 s on machine 1",
			Got: ms(m1Rep.Downtime), Want: 1700, Unit: "ms", Tol: measuredTol},
		Assertion{Name: "fig6/m1/total", Source: "§5.2.1: InPlaceTP Xen→KVM total ~2.15 s on machine 1",
			Got: ms(m1Rep.Total), Want: 2150, Unit: "ms", Tol: measuredTol},
		Assertion{Name: "fig6/m2/downtime", Source: "§5.2.1: InPlaceTP Xen→KVM downtime ~3.0 s on machine 2",
			Got: ms(m2Rep.Downtime), Want: 3010, Unit: "ms", Tol: measuredTol},
		Assertion{Name: "fig6/m2/total", Source: "§5.2.1: InPlaceTP Xen→KVM total ~3.56 s on machine 2",
			Got: ms(m2Rep.Total), Want: 3560, Unit: "ms", Tol: measuredTol},
		Assertion{Name: "fig6/m1/reboot-fraction", Source: "§5.2.1: micro-reboot is ~70% of total transplant time",
			Got: float64(m1Rep.Reboot) / float64(m1Rep.Total), Want: 0.70, Unit: "x", Tol: ratioTol},
		Assertion{Name: "fig10/m1/kvm-to-xen", Source: "Fig. 10: KVM→Xen downtime ~7.8 s on machine 1 (Xen boots two kernels)",
			Got: ms(m1Rev.Downtime), Want: 7800, Unit: "ms", Tol: ratioTol},
		Assertion{Name: "fig12/m1/network-downtime", Source: "Fig. 12: network downtime = VM downtime + NIC reinitialization",
			Got: ms(m1Rep.NetworkDowntime), Want: ms(m1Rep.Downtime + c1.NICReinit), Unit: "ms", Tol: 0},
	)
	return as, nil
}

// Assertions is the catalogue over the stock machine profiles.
func Assertions() ([]Assertion, error) {
	return For(hw.M1(), hw.M2())
}

// Check evaluates the whole catalogue and returns every violated
// assertion (nil when calibration holds).
func Check() []error {
	as, err := Assertions()
	if err != nil {
		return []error{err}
	}
	var errs []error
	for _, a := range as {
		if err := a.Err(); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}
