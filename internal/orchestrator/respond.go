package orchestrator

import (
	"fmt"
	"sort"
	"time"

	"hypertp/internal/core"
	"hypertp/internal/hv"
	"hypertp/internal/vulndb"
)

// FleetResponse is the outcome of an automated vulnerability response
// across the whole fleet.
type FleetResponse struct {
	CVE    string
	Target hv.Kind
	// UpgradedNodes lists nodes transplanted, in order.
	UpgradedNodes []string
	// SkippedNodes lists nodes that already ran an unaffected
	// hypervisor.
	SkippedNodes []string
	// Records are the per-node upgrade reports.
	Records []*UpgradeRecord
	// Elapsed is the virtual time from alert to fleet-secured.
	Elapsed time.Duration
}

// RespondToCVE is the paper's end-to-end scenario as a single operation:
// given a newly disclosed vulnerability, consult the database, pick a
// safe target hypervisor from the pool, and upgrade every affected node
// (evacuating InPlaceTP-incompatible VMs first). It refuses to act on
// non-critical flaws — HyperTP is reserved for critical vulnerabilities
// (§1) — and fails when no pool member is safe (the VENOM case).
func (n *Nova) RespondToCVE(db *vulndb.Database, cveID string, pool []string, opts core.Options) (*FleetResponse, error) {
	rec, ok := db.Lookup(cveID)
	if !ok {
		return nil, fmt.Errorf("nova: unknown vulnerability %q", cveID)
	}
	if rec.Severity() != vulndb.SeverityCritical {
		return nil, fmt.Errorf("nova: %s is %s; transplant is reserved for critical flaws",
			cveID, rec.Severity())
	}
	start := n.clock.Now()
	resp := &FleetResponse{CVE: cveID}

	// Determine affected nodes and a common safe target. Processing in
	// name order keeps the response deterministic.
	names := make([]string, 0, len(n.nodes))
	for name := range n.nodes {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		node := n.nodes[name]
		current := node.Driver.HypervisorKind().String()
		if !rec.Affected(current) {
			resp.SkippedNodes = append(resp.SkippedNodes, name)
			continue
		}
		targetName, err := db.SelectTarget(current, []string{cveID}, pool)
		if err != nil {
			return nil, fmt.Errorf("nova: node %s: %w", name, err)
		}
		var target hv.Kind
		switch targetName {
		case "xen":
			target = hv.KindXen
		case "kvm":
			target = hv.KindKVM
		case "nova":
			target = hv.KindNOVA
		default:
			return nil, fmt.Errorf("nova: policy chose unknown hypervisor %q", targetName)
		}
		up, err := n.HostLiveUpgrade(name, target, opts)
		if err != nil {
			return nil, fmt.Errorf("nova: node %s: %w", name, err)
		}
		resp.Target = target
		resp.UpgradedNodes = append(resp.UpgradedNodes, name)
		resp.Records = append(resp.Records, up)
	}
	if len(resp.UpgradedNodes) == 0 {
		return nil, fmt.Errorf("nova: no node runs a hypervisor affected by %s", cveID)
	}
	resp.Elapsed = n.clock.Now() - start
	return resp, nil
}
