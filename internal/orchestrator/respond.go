package orchestrator

import (
	"fmt"
	"sort"
	"time"

	"hypertp/internal/core"
	"hypertp/internal/fault"
	"hypertp/internal/hterr"
	"hypertp/internal/hv"
	"hypertp/internal/report"
	"hypertp/internal/slo"
	"hypertp/internal/vulndb"
)

// FleetResponse is the outcome of an automated vulnerability response
// across the whole fleet.
type FleetResponse struct {
	CVE    string
	Target hv.Kind
	// UpgradedNodes lists nodes transplanted, in order.
	UpgradedNodes []string
	// SkippedNodes lists nodes that already ran an unaffected
	// hypervisor.
	SkippedNodes []string
	// QuarantinedNodes lists nodes that failed their upgrade and were
	// quarantined instead of failing the whole response.
	QuarantinedNodes []string
	// ReplannedVMs lists VMs evacuated off quarantined nodes.
	ReplannedVMs []string
	// StrandedVMs lists VMs that could not be evacuated off a
	// quarantined node (no capacity). They keep running on the old,
	// still-vulnerable hypervisor — degraded, never lost.
	StrandedVMs []string
	// Records are the per-node upgrade reports.
	Records []*UpgradeRecord
	// Faults counts the injected faults the response absorbed.
	Faults int
	// Outcome is completed, or degraded when any node was quarantined.
	Outcome report.Outcome
	// Elapsed is the virtual time from alert to fleet-secured.
	Elapsed time.Duration
}

// Summary implements report.Report. The cache counters aggregate over
// the per-node upgrade reports.
func (r *FleetResponse) Summary() report.Summary {
	s := report.Summary{
		Kind:           "fleet",
		Outcome:        r.Outcome,
		Attempts:       1,
		VirtualElapsed: r.Elapsed,
		Faults:         r.Faults,
	}
	for _, rec := range r.Records {
		if rec.Report == nil {
			continue
		}
		s.CacheHits += rec.Report.CacheHits
		s.CacheMisses += rec.Report.CacheMisses
		s.CacheWarmStarts += rec.Report.CacheWarmStarts
	}
	return s
}

// RespondToCVE is the paper's end-to-end scenario as a single operation:
// given a newly disclosed vulnerability, consult the database, pick a
// safe target hypervisor from the pool, and upgrade every affected node
// (evacuating InPlaceTP-incompatible VMs first). It refuses to act on
// non-critical flaws — HyperTP is reserved for critical vulnerabilities
// (§1) — and fails when no pool member is safe (the VENOM case).
func (n *Nova) RespondToCVE(db *vulndb.Database, cveID string, pool []string, opts core.Options) (*FleetResponse, error) {
	rec, ok := db.Lookup(cveID)
	if !ok {
		return nil, fmt.Errorf("nova: unknown vulnerability %q", cveID)
	}
	if rec.Severity() != vulndb.SeverityCritical {
		return nil, fmt.Errorf("nova: %s is %s; transplant is reserved for critical flaws",
			cveID, rec.Severity())
	}
	if n.fleetLimits != nil {
		// Concurrent fleet response: plan the whole response as a DAG
		// of host-level operations and execute it under the configured
		// capacity limits (see SetFleetLimits).
		return n.respondScheduled(db, rec, cveID, pool, opts)
	}
	start := n.clock.Now()
	resp := &FleetResponse{CVE: cveID, Outcome: report.OutcomeCompleted}
	n.slo.SetTarget(cveID, start, slo.Target{Quantile: slo.DefaultQuantile, Window: rec.RemediationWindow()})

	// Determine affected nodes and a common safe target. Processing in
	// name order keeps the response deterministic.
	names := make([]string, 0, len(n.nodes))
	for name := range n.nodes {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		// Downed hosts are the reactive path's to recover (RecoverHost /
		// RecoverFleet); the CVE response treats them like quarantined
		// ones rather than racing an upgrade against a frozen hypervisor.
		if n.quarantined[name] || n.HostDowned(name) {
			continue
		}
		node := n.nodes[name]
		current := node.Driver.HypervisorKind().String()
		if !rec.Affected(current) {
			resp.SkippedNodes = append(resp.SkippedNodes, name)
			continue
		}
		// The host has been vulnerable since disclosure, not since we
		// noticed: the exposure interval opens at start.
		n.slo.Expose(cveID, name, start)
		targetName, err := db.SelectTarget(current, []string{cveID}, pool)
		if err != nil {
			return nil, fmt.Errorf("nova: node %s: %w", name, err)
		}
		var target hv.Kind
		switch targetName {
		case "xen":
			target = hv.KindXen
		case "kvm":
			target = hv.KindKVM
		case "nova":
			target = hv.KindNOVA
		default:
			return nil, fmt.Errorf("nova: policy chose unknown hypervisor %q", targetName)
		}
		if fired, _ := n.faults.Arm(fault.SiteClusterHost); fired {
			// Injected host failure during the upgrade window: degrade
			// instead of failing the fleet response.
			resp.Faults++
			n.quarantineNode(name, resp)
			continue
		}
		up, err := n.HostLiveUpgrade(name, target, opts)
		if err != nil {
			if hterr.Class(err) == hterr.ErrVMLost {
				// Unrecoverable: surface the partial response alongside
				// the error so the operator sees what did complete.
				resp.Elapsed = n.clock.Now() - start
				resp.Outcome = report.OutcomeDegraded
				return resp, err
			}
			n.quarantineNode(name, resp)
			continue
		}
		resp.Target = target
		resp.UpgradedNodes = append(resp.UpgradedNodes, name)
		resp.Records = append(resp.Records, up)
		n.slo.Remediate(cveID, name, n.clock.Now())
	}
	if len(resp.UpgradedNodes) == 0 && len(resp.QuarantinedNodes) == 0 {
		return nil, fmt.Errorf("nova: no node runs a hypervisor affected by %s", cveID)
	}
	if len(resp.QuarantinedNodes) > 0 {
		resp.Outcome = report.OutcomeDegraded
	}
	resp.Elapsed = n.clock.Now() - start
	return resp, nil
}

// quarantineNode marks a node failed and drains it (see Quarantine),
// folding the outcome into the fleet response.
func (n *Nova) quarantineNode(name string, resp *FleetResponse) {
	replanned, stranded, err := n.Quarantine(name)
	if err != nil {
		return // already quarantined: nothing left to drain
	}
	resp.ReplannedVMs = append(resp.ReplannedVMs, replanned...)
	resp.StrandedVMs = append(resp.StrandedVMs, stranded...)
	resp.QuarantinedNodes = append(resp.QuarantinedNodes, name)
}
