package orchestrator

import (
	"errors"
	"testing"
	"time"

	"hypertp/internal/core"
	"hypertp/internal/fault"
	"hypertp/internal/hterr"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/report"
	"hypertp/internal/simnet"
	"hypertp/internal/simtime"
	"hypertp/internal/vulndb"
)

type cloud struct {
	clock *simtime.Clock
	nova  *Nova
}

func newCloud(t *testing.T, nodes int, kind hv.Kind) *cloud {
	t.Helper()
	clock := simtime.NewClock()
	fabric := simnet.NewLink(clock, "fabric", simnet.Gbps10, 100*time.Microsecond)
	nova := NewNova(clock, fabric)
	for i := 0; i < nodes; i++ {
		m := hw.NewMachine(clock, hw.M2())
		d, err := NewLibvirtDriver(clock, m, kind)
		if err != nil {
			t.Fatal(err)
		}
		if err := nova.AddNode(nodeName(i), d); err != nil {
			t.Fatal(err)
		}
	}
	return &cloud{clock: clock, nova: nova}
}

func nodeName(i int) string { return string(rune('a'+i)) + "-node" }

func vmCfg(name string, compat bool) hv.Config {
	return hv.Config{
		Name: name, VCPUs: 1, MemBytes: 1 << 30, HugePages: true,
		Seed: 5, InPlaceCompatible: compat,
	}
}

func TestAddNodeDuplicate(t *testing.T) {
	c := newCloud(t, 1, hv.KindXen)
	m := hw.NewMachine(c.clock, hw.M2())
	d, _ := NewLibvirtDriver(c.clock, m, hv.KindXen)
	if err := c.nova.AddNode(nodeName(0), d); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, ok := c.nova.Node(nodeName(0)); !ok {
		t.Fatal("node lookup failed")
	}
}

func TestBootVMAndRecords(t *testing.T) {
	c := newCloud(t, 2, hv.KindXen)
	node, err := c.nova.BootVM(vmCfg("web-1", true))
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := c.nova.Record("web-1")
	if !ok || rec.Node != node || rec.Kind != hv.KindXen {
		t.Fatalf("record = %+v", rec)
	}
	if _, err := c.nova.BootVM(vmCfg("web-1", true)); err == nil {
		t.Fatal("duplicate VM accepted")
	}
	if len(c.nova.Records()) != 1 {
		t.Fatal("records count wrong")
	}
}

// §4.5.2 point 4: the scheduler keeps transplantable VMs together.
func TestSchedulerHyperTPAffinity(t *testing.T) {
	c := newCloud(t, 2, hv.KindXen)
	nodeA, _ := c.nova.BootVM(vmCfg("compat-1", true))
	nodeB, _ := c.nova.BootVM(vmCfg("legacy-1", false))
	if nodeA == nodeB {
		t.Fatal("mixed transplantability on one node at first placement")
	}
	// Subsequent compatible VMs join the compatible node, incompatible
	// ones the other.
	for i := 0; i < 4; i++ {
		n1, err := c.nova.BootVM(vmCfg("compat-x"+string(rune('0'+i)), true))
		if err != nil {
			t.Fatal(err)
		}
		if n1 != nodeA {
			t.Fatalf("compatible VM scheduled on %s, want %s", n1, nodeA)
		}
		n2, err := c.nova.BootVM(vmCfg("legacy-x"+string(rune('0'+i)), false))
		if err != nil {
			t.Fatal(err)
		}
		if n2 != nodeB {
			t.Fatalf("incompatible VM scheduled on %s, want %s", n2, nodeB)
		}
	}
}

func TestBootVMNoCapacity(t *testing.T) {
	c := newCloud(t, 1, hv.KindXen)
	cfg := vmCfg("huge", true)
	cfg.VCPUs = 1000
	if _, err := c.nova.BootVM(cfg); err == nil {
		t.Fatal("oversized VM accepted")
	}
}

func TestLiveMigrateUpdatesDB(t *testing.T) {
	c := newCloud(t, 2, hv.KindXen)
	src, _ := c.nova.BootVM(vmCfg("mover", false))
	dest := nodeName(0)
	if dest == src {
		dest = nodeName(1)
	}
	rep, err := c.nova.LiveMigrate("mover", dest)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Heterogeneous {
		t.Fatal("Xen→Xen flagged heterogeneous")
	}
	rec, _ := c.nova.Record("mover")
	if rec.Node != dest {
		t.Fatalf("record node = %s, want %s", rec.Node, dest)
	}
	if _, err := c.nova.LiveMigrate("mover", dest); err == nil {
		t.Fatal("migration to current node accepted")
	}
	if _, err := c.nova.LiveMigrate("ghost", dest); err == nil {
		t.Fatal("unknown VM accepted")
	}
}

// The §4.5.2 one-click path: evacuate incompatible VMs, transplant the
// host, update the database.
func TestHostLiveUpgrade(t *testing.T) {
	c := newCloud(t, 2, hv.KindXen)
	// Force both kinds of VM onto node a by booting compat first.
	target := nodeName(0)
	other := nodeName(1)
	for i := 0; i < 3; i++ {
		name := "c" + string(rune('0'+i))
		if _, err := c.nova.BootVM(vmCfg(name, true)); err != nil {
			t.Fatal(err)
		}
	}
	// All three landed on the same node (affinity). Identify it.
	rec, _ := c.nova.Record("c0")
	target = rec.Node
	if target == nodeName(1) {
		other = nodeName(0)
	}
	// Add one incompatible VM directly to the target node's driver by
	// filling the other node first — simpler: boot it and migrate it
	// onto the target to create the mixed situation.
	if _, err := c.nova.BootVM(vmCfg("legacy", false)); err != nil {
		t.Fatal(err)
	}
	if r, _ := c.nova.Record("legacy"); r.Node != target {
		if _, err := c.nova.LiveMigrate("legacy", target); err != nil {
			t.Fatal(err)
		}
	}

	up, err := c.nova.HostLiveUpgrade(target, hv.KindKVM, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(up.EvacuatedVMs) != 1 || up.EvacuatedVMs[0] != "legacy" {
		t.Fatalf("evacuated = %v, want [legacy]", up.EvacuatedVMs)
	}
	if up.Report == nil || len(up.Report.VMs) != 3 {
		t.Fatalf("transplant report wrong: %+v", up.Report)
	}
	node, _ := c.nova.Node(target)
	if node.Driver.HypervisorKind() != hv.KindKVM {
		t.Fatal("node not on KVM after upgrade")
	}
	// Database rows reflect the new world.
	for _, name := range []string{"c0", "c1", "c2"} {
		r, _ := c.nova.Record(name)
		if r.Kind != hv.KindKVM || r.Node != target {
			t.Fatalf("record %s = %+v", name, r)
		}
	}
	legacyRec, _ := c.nova.Record("legacy")
	if legacyRec.Node != other || legacyRec.Kind != hv.KindXen {
		t.Fatalf("legacy record = %+v", legacyRec)
	}
	// Guests still verify.
	for _, vm := range node.Driver.VMs() {
		if err := vm.Guest.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHostLiveUpgradeEmptyHost(t *testing.T) {
	c := newCloud(t, 2, hv.KindXen)
	up, err := c.nova.HostLiveUpgrade(nodeName(1), hv.KindKVM, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if up.Report != nil {
		t.Fatal("empty host produced a transplant report")
	}
	node, _ := c.nova.Node(nodeName(1))
	if node.Driver.HypervisorKind() != hv.KindKVM {
		t.Fatal("empty host not on KVM")
	}
}

func TestHostLiveUpgradeErrors(t *testing.T) {
	c := newCloud(t, 1, hv.KindXen)
	if _, err := c.nova.HostLiveUpgrade("ghost", hv.KindKVM, core.DefaultOptions()); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, err := c.nova.HostLiveUpgrade(nodeName(0), hv.KindXen, core.DefaultOptions()); err == nil {
		t.Fatal("same-kind upgrade accepted")
	}
	// Incompatible VM with nowhere to evacuate to.
	if _, err := c.nova.BootVM(vmCfg("stuck", false)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.nova.HostLiveUpgrade(nodeName(0), hv.KindKVM, core.DefaultOptions()); err == nil {
		t.Fatal("upgrade without evacuation capacity accepted")
	}
}

func TestDriverBasics(t *testing.T) {
	clock := simtime.NewClock()
	m := hw.NewMachine(clock, hw.M1())
	d, err := NewLibvirtDriver(clock, m, hv.KindKVM)
	if err != nil {
		t.Fatal(err)
	}
	if d.HypervisorKind() != hv.KindKVM {
		t.Fatal("kind wrong")
	}
	id, err := d.Spawn(vmCfg("x", true))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Suspend(id); err != nil {
		t.Fatal(err)
	}
	if err := d.Resume(id); err != nil {
		t.Fatal(err)
	}
	if len(d.VMs()) != 1 {
		t.Fatal("VMs() wrong")
	}
	vcpus, _ := d.Capacity()
	if vcpus != hw.M1().Threads-hw.M1().ReservedCPUs-1 {
		t.Fatalf("capacity = %d", vcpus)
	}
	if err := d.Destroy(id); err != nil {
		t.Fatal(err)
	}
}

// The end-to-end automated response: a critical Xen CVE secures the whole
// fleet in one call; unaffected nodes are skipped; medium flaws and
// common flaws are refused.
func TestRespondToCVE(t *testing.T) {
	c := newCloud(t, 3, hv.KindXen)
	// One node already runs KVM (mixed fleet).
	if _, err := c.nova.HostLiveUpgrade(nodeName(2), hv.KindKVM, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.nova.BootVM(vmCfg("t"+string(rune('0'+i)), true)); err != nil {
			t.Fatal(err)
		}
	}
	db := vulndb.Load()
	resp, err := c.nova.RespondToCVE(db, "CVE-2016-6258", []string{"xen", "kvm"}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Target != hv.KindKVM {
		t.Fatalf("target = %v", resp.Target)
	}
	if len(resp.UpgradedNodes) != 2 || len(resp.SkippedNodes) != 1 {
		t.Fatalf("upgraded %v skipped %v", resp.UpgradedNodes, resp.SkippedNodes)
	}
	if resp.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	// Whole fleet now unaffected.
	for _, name := range []string{nodeName(0), nodeName(1), nodeName(2)} {
		node, _ := c.nova.Node(name)
		if node.Driver.HypervisorKind() != hv.KindKVM {
			t.Fatalf("node %s still on %v", name, node.Driver.HypervisorKind())
		}
	}
	for _, vm := range allVMs(c.nova) {
		if err := vm.Guest.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRespondToCVERefusals(t *testing.T) {
	c := newCloud(t, 2, hv.KindXen)
	db := vulndb.Load()
	if _, err := c.nova.RespondToCVE(db, "CVE-9999-0000", nil, core.DefaultOptions()); err == nil {
		t.Fatal("unknown CVE accepted")
	}
	// Medium severity: reserved for critical.
	if _, err := c.nova.RespondToCVE(db, "CVE-2015-8104", []string{"xen", "kvm"}, core.DefaultOptions()); err == nil {
		t.Fatal("medium flaw accepted")
	}
	// VENOM: no safe target in a two-member pool.
	if _, err := c.nova.RespondToCVE(db, "CVE-2015-3456", []string{"xen", "kvm"}, core.DefaultOptions()); err == nil {
		t.Fatal("VENOM response proceeded without a safe target")
	}
	// KVM-only flaw on a Xen fleet: nothing to do.
	if _, err := c.nova.RespondToCVE(db, "CVE-2017-12188", []string{"xen", "kvm"}, core.DefaultOptions()); err == nil {
		t.Fatal("irrelevant flaw produced a response")
	}
}

// An injected link sever mid-migration: with a fault plan attached the
// manager retries under the default policy and the migration recovers.
func TestLiveMigrateRetriesUnderFaultPlan(t *testing.T) {
	c := newCloud(t, 2, hv.KindXen)
	c.nova.SetFaults(fault.NewPlan(7, 0).ForceAt(fault.SiteLinkAbort, 1))
	if _, err := c.nova.BootVM(vmCfg("mover", true)); err != nil {
		t.Fatal(err)
	}
	rec, _ := c.nova.Record("mover")
	dest := nodeName(0)
	if rec.Node == dest {
		dest = nodeName(1)
	}
	rep, err := c.nova.LiveMigrate("mover", dest)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts != 2 || rep.Faults != 1 {
		t.Fatalf("attempts = %d faults = %d, want 2 and 1", rep.Attempts, rep.Faults)
	}
	if rep.Outcome != report.OutcomeRecovered {
		t.Fatalf("outcome = %s, want recovered", rep.Outcome)
	}
	rec, _ = c.nova.Record("mover")
	if rec.Node != dest {
		t.Fatalf("record node = %s, want %s", rec.Node, dest)
	}
	node, _ := c.nova.Node(dest)
	for _, vm := range node.Driver.VMs() {
		if err := vm.Guest.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

// An injected host failure during a fleet response: the node is
// quarantined, its VMs are re-planned onto healthy hosts, and the
// response completes degraded instead of failing.
func TestRespondToCVEDegradesOnHostFault(t *testing.T) {
	c := newCloud(t, 3, hv.KindXen)
	for i := 0; i < 3; i++ {
		if _, err := c.nova.BootVM(vmCfg("d"+string(rune('0'+i)), true)); err != nil {
			t.Fatal(err)
		}
	}
	// Affinity packs all three VMs onto the first node; quarantine it.
	rec0, _ := c.nova.Record("d0")
	c.nova.SetFaults(fault.NewPlan(11, 0).ForceAt(fault.SiteClusterHost, 1))

	db := vulndb.Load()
	resp, err := c.nova.RespondToCVE(db, "CVE-2016-6258", []string{"xen", "kvm"}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != report.OutcomeDegraded || resp.Faults != 1 {
		t.Fatalf("outcome = %s faults = %d", resp.Outcome, resp.Faults)
	}
	if s := resp.Summary(); s.Kind != "fleet" || s.Outcome != report.OutcomeDegraded || s.Faults != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if len(resp.QuarantinedNodes) != 1 || resp.QuarantinedNodes[0] != rec0.Node {
		t.Fatalf("quarantined = %v, want [%s]", resp.QuarantinedNodes, rec0.Node)
	}
	if !c.nova.Quarantined(rec0.Node) {
		t.Fatal("node not marked quarantined")
	}
	if len(resp.ReplannedVMs) != 3 || len(resp.StrandedVMs) != 0 {
		t.Fatalf("replanned = %v stranded = %v", resp.ReplannedVMs, resp.StrandedVMs)
	}
	// The quarantined node still runs the old hypervisor and is empty;
	// the rest of the fleet is secured.
	for _, name := range []string{nodeName(0), nodeName(1), nodeName(2)} {
		node, _ := c.nova.Node(name)
		want := hv.KindKVM
		if name == rec0.Node {
			want = hv.KindXen
			if len(node.Driver.VMs()) != 0 {
				t.Fatalf("quarantined node still hosts %d VMs", len(node.Driver.VMs()))
			}
		}
		if node.Driver.HypervisorKind() != want {
			t.Fatalf("node %s on %v, want %v", name, node.Driver.HypervisorKind(), want)
		}
	}
	// Every VM is reachable where its database row says, with state intact.
	for i := 0; i < 3; i++ {
		r, ok := c.nova.Record("d" + string(rune('0'+i)))
		if !ok || r.Node == rec0.Node {
			t.Fatalf("record %d = %+v", i, r)
		}
		node, _ := c.nova.Node(r.Node)
		vm, ok := node.Driver.Hypervisor().LookupVM(r.ID)
		if !ok {
			t.Fatalf("VM %s unreachable on %s", r.Name, r.Node)
		}
		if r.Kind != node.Driver.HypervisorKind() {
			t.Fatalf("record %s kind %v, node runs %v", r.Name, r.Kind, node.Driver.HypervisorKind())
		}
		if err := vm.Guest.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

// A database row whose VM has vanished from its node is a lost-VM error,
// not a generic failure.
func TestColdMigrateLostVMClassified(t *testing.T) {
	c := newCloud(t, 2, hv.KindXen)
	if _, err := c.nova.BootVM(vmCfg("gone", true)); err != nil {
		t.Fatal(err)
	}
	rec, _ := c.nova.Record("gone")
	node, _ := c.nova.Node(rec.Node)
	if err := node.Driver.Destroy(rec.ID); err != nil {
		t.Fatal(err)
	}
	dest := nodeName(0)
	if rec.Node == dest {
		dest = nodeName(1)
	}
	err := c.nova.ColdMigrate("gone", dest)
	if !errors.Is(err, hterr.ErrVMLost) {
		t.Fatalf("err = %v, want ErrVMLost classification", err)
	}
}

func allVMs(n *Nova) []*hv.VM {
	var out []*hv.VM
	for _, rec := range n.Records() {
		node, _ := n.Node(rec.Node)
		out = append(out, node.Driver.VMs()...)
	}
	return out
}

// A mixed fleet with a microhypervisor node: the VENOM response succeeds
// when the pool includes it, moving the Xen and KVM nodes to NOVA.
func TestRespondToVENOMWithMicrohypervisorPool(t *testing.T) {
	c := newCloud(t, 2, hv.KindXen)
	m := hw.NewMachine(c.clock, hw.M2())
	d, err := NewLibvirtDriver(c.clock, m, hv.KindNOVA)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.nova.AddNode("n-node", d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.nova.BootVM(vmCfg("v"+string(rune('0'+i)), true)); err != nil {
			t.Fatal(err)
		}
	}
	db := vulndb.Load()
	resp, err := c.nova.RespondToCVE(db, "CVE-2015-3456",
		[]string{"xen", "kvm", "nova"}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Target != hv.KindNOVA {
		t.Fatalf("target = %v, want NOVA", resp.Target)
	}
	if len(resp.UpgradedNodes) != 2 || len(resp.SkippedNodes) != 1 {
		t.Fatalf("upgraded %v skipped %v", resp.UpgradedNodes, resp.SkippedNodes)
	}
	for _, name := range []string{nodeName(0), nodeName(1), "n-node"} {
		node, _ := c.nova.Node(name)
		if node.Driver.HypervisorKind() != hv.KindNOVA {
			t.Fatalf("node %s on %v", name, node.Driver.HypervisorKind())
		}
	}
	for _, vm := range allVMs(c.nova) {
		if err := vm.Guest.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

// ColdMigrate: the checkpoint-based path moves a VM across heterogeneous
// nodes without a migration stream.
func TestColdMigrate(t *testing.T) {
	c := newCloud(t, 1, hv.KindXen)
	m := hw.NewMachine(c.clock, hw.M2())
	d, err := NewLibvirtDriver(c.clock, m, hv.KindKVM)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.nova.AddNode("k-node", d); err != nil {
		t.Fatal(err)
	}
	if _, err := c.nova.BootVM(vmCfg("cold", true)); err != nil {
		t.Fatal(err)
	}
	rec, _ := c.nova.Record("cold")
	src := rec.Node
	dest := "k-node"
	if src == dest {
		dest = nodeName(0)
	}
	// Write data through the guest, then cold-migrate.
	srcNode, _ := c.nova.Node(src)
	var g interface{ Verify() error }
	for _, vm := range srcNode.Driver.VMs() {
		vm.Guest.WriteWorkingSet(0, 64)
		g = vm.Guest
	}
	if err := c.nova.ColdMigrate("cold", dest); err != nil {
		t.Fatal(err)
	}
	rec, _ = c.nova.Record("cold")
	if rec.Node != dest {
		t.Fatalf("record node = %s, want %s", rec.Node, dest)
	}
	destNode, _ := c.nova.Node(dest)
	if rec.Kind != destNode.Driver.HypervisorKind() {
		t.Fatal("record kind not updated")
	}
	if err := g.Verify(); err != nil {
		t.Fatalf("guest state lost in cold migration: %v", err)
	}
	// Source is empty.
	if len(srcNode.Driver.VMs()) != 0 {
		t.Fatal("source VM still present")
	}
	// Error paths.
	if err := c.nova.ColdMigrate("ghost", dest); err == nil {
		t.Fatal("unknown VM accepted")
	}
	if err := c.nova.ColdMigrate("cold", "ghost-node"); err == nil {
		t.Fatal("unknown node accepted")
	}
	if err := c.nova.ColdMigrate("cold", dest); err == nil {
		t.Fatal("migration to current node accepted")
	}
}
