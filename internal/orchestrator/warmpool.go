package orchestrator

import (
	"fmt"

	"hypertp/internal/core"
	"hypertp/internal/tpcache"
)

// SetWarmPool attaches a transplant cache and a pool-size target to the
// manager. WarmPoolRefill then pre-stages UISR translations for up to
// slots transplantable VMs across the fleet, so the transplants of the
// next RespondToCVE start from cache hits instead of cold saves. The
// cache should be the same one passed to the fleet's core.Options, or
// the staged entries will never be consulted. A nil cache detaches.
func (n *Nova) SetWarmPool(cache *tpcache.Cache, slots int) {
	n.warmCache = cache
	n.warmSlots = slots
}

// WarmPool returns the attached warm-pool cache and slot target.
func (n *Nova) WarmPool() (*tpcache.Cache, int) { return n.warmCache, n.warmSlots }

// WarmPoolRefill tops the warm pool back up to its slot target:
// fleet-wide, in node-name order, it pre-stages the UISR translation of
// transplantable VMs that have no cached entry yet. Each VM is paused
// just long enough to save and encode its platform state — pure
// wall-clock work that charges no virtual time, which is the point: the
// pool is filled outside any vulnerability window, so RespondToCVE's
// transplants skip the cold save inside one.
//
// When fleet limits are set (SetFleetLimits), one refill pass stages at
// most SpareSlots entries — refilling competes with evacuations for
// spare capacity, so it is throttled by the same knob.
func (n *Nova) WarmPoolRefill() (int, error) {
	if n.warmCache == nil {
		return 0, fmt.Errorf("nova: no warm pool configured")
	}
	want := n.warmSlots - n.warmCache.WarmSlots()
	if want <= 0 {
		return 0, nil
	}
	if n.fleetLimits != nil && n.fleetLimits.SpareSlots > 0 && want > n.fleetLimits.SpareSlots {
		want = n.fleetLimits.SpareSlots
	}
	sp := n.obs.Start("nova.warm-pool-refill")
	defer sp.End()
	staged := 0
	for _, name := range n.order {
		if staged >= want {
			break
		}
		if n.quarantined[name] {
			continue
		}
		d, ok := n.nodes[name].Driver.(*LibvirtDriver)
		if !ok {
			continue
		}
		k, err := d.PreStageTranslations(n.warmCache, want-staged)
		staged += k
		if err != nil {
			sp.SetAttr("staged", staged)
			return staged, fmt.Errorf("nova: warm pool refill on %s: %w", name, err)
		}
	}
	sp.SetAttr("staged", staged)
	n.obs.Metrics().Counter("nova.warm_pool_staged", "entries").Add(int64(staged))
	return staged, nil
}

// PreStageTranslations warms the transplant cache for up to budget of
// this host's transplantable VMs (see core.PreStageTranslations).
func (d *LibvirtDriver) PreStageTranslations(cache *tpcache.Cache, budget int) (int, error) {
	return core.PreStageTranslations(d.hyp, d.engine.Machine, cache, budget)
}
