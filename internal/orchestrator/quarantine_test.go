package orchestrator

import (
	"errors"
	"testing"

	"hypertp/internal/core"
	"hypertp/internal/fault"
	"hypertp/internal/hterr"
	"hypertp/internal/hv"
)

func TestQuarantineDrainsAndReturn(t *testing.T) {
	c := newCloud(t, 3, hv.KindXen)
	for _, name := range []string{"q-0", "q-1", "q-2", "q-3"} {
		if _, err := c.nova.BootVM(vmCfg(name, true)); err != nil {
			t.Fatal(err)
		}
	}
	// Pick the node carrying at least one VM.
	var target string
	for _, rec := range c.nova.Records() {
		target = rec.Node
		break
	}
	replanned, stranded, err := c.nova.Quarantine(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(stranded) != 0 {
		t.Fatalf("stranded %v with two healthy nodes available", stranded)
	}
	if len(replanned) == 0 {
		t.Fatal("no VMs replanned off the quarantined node")
	}
	if !c.nova.Quarantined(target) {
		t.Fatal("node not marked quarantined")
	}
	for _, rec := range c.nova.Records() {
		if rec.Node == target {
			t.Fatalf("record %s still placed on quarantined node", rec.Name)
		}
	}
	node, _ := c.nova.Node(target)
	if n := len(node.Driver.VMs()); n != 0 {
		t.Fatalf("quarantined node still runs %d VMs", n)
	}
	// Quarantine is not idempotent: a second fence is an operator error.
	if _, _, err := c.nova.Quarantine(target); err == nil {
		t.Fatal("double quarantine accepted")
	}
	if _, _, err := c.nova.Quarantine("no-such-node"); err == nil {
		t.Fatal("unknown node accepted")
	}
	// The scheduler must not place new VMs on the fenced node.
	for i := 0; i < 3; i++ {
		placed, err := c.nova.BootVM(vmCfg("post-"+string(rune('a'+i)), true))
		if err != nil {
			t.Fatal(err)
		}
		if placed == target {
			t.Fatal("scheduler placed a VM on a quarantined node")
		}
	}
	if err := c.nova.Return(target); err != nil {
		t.Fatal(err)
	}
	if c.nova.Quarantined(target) {
		t.Fatal("node still quarantined after Return")
	}
	if err := c.nova.Return(target); err == nil {
		t.Fatal("returning a healthy node accepted")
	}
	if err := c.nova.Return("no-such-node"); err == nil {
		t.Fatal("returning an unknown node accepted")
	}
}

func TestNodesListsFleetInOrder(t *testing.T) {
	c := newCloud(t, 3, hv.KindXen)
	names := c.nova.Nodes()
	if len(names) != 3 {
		t.Fatalf("Nodes() = %v", names)
	}
	for i, name := range names {
		if name != nodeName(i) {
			t.Fatalf("Nodes()[%d] = %q, want %q", i, name, nodeName(i))
		}
	}
	// The returned slice is a copy — mutating it must not corrupt Nova.
	names[0] = "mutated"
	if c.nova.Nodes()[0] != nodeName(0) {
		t.Fatal("Nodes() exposed internal state")
	}
}

// TestHostLiveUpgradeLostHostReconciled is the regression for the chaos
// finding: a host whose in-place upgrade dies past the kexec point (all
// boots fail, VMs unrecoverable) must not leave stale placement rows —
// the database would otherwise place VMs on a dead host forever.
func TestHostLiveUpgradeLostHostReconciled(t *testing.T) {
	c := newCloud(t, 2, hv.KindXen)
	if _, err := c.nova.BootVM(vmCfg("doomed", true)); err != nil {
		t.Fatal(err)
	}
	rec, _ := c.nova.Record("doomed")
	other := nodeName(0)
	if rec.Node == other {
		other = nodeName(1)
	}
	// Every target boot fails: the engine exhausts its retry budget past
	// the point of no return and reports the host's VMs lost.
	c.nova.SetFaults(fault.NewPlan(1, 1).Restrict(fault.SiteHVBoot).SetClock(c.clock))
	_, err := c.nova.HostLiveUpgrade(rec.Node, hv.KindKVM, core.DefaultOptions())
	if !errors.Is(err, hterr.ErrVMLost) {
		t.Fatalf("err = %v, want ErrVMLost", err)
	}
	if _, ok := c.nova.Record("doomed"); ok {
		t.Fatal("stale placement row survived the lost host")
	}
	if !c.nova.Quarantined(rec.Node) {
		t.Fatal("lost host not quarantined")
	}
	// The surviving node keeps working: the fleet still boots VMs.
	c.nova.SetFaults(nil)
	placed, err := c.nova.BootVM(vmCfg("fresh", true))
	if err != nil {
		t.Fatal(err)
	}
	if placed != other {
		t.Fatalf("fresh VM placed on %q, want healthy node %q", placed, other)
	}
}
