// Package orchestrator models the paper's OpenStack integration (§4.5):
// a Nova-like cloud manager driving hypervisors exclusively through a
// generic libvirt-style ComputeDriver (the "G2" interaction mode every
// surveyed operator uses), extended with the HyperTP operations —
// guest-state saving, host live upgrade, guest-state restoring — plus a
// HyperTP-aware scheduler filter that keeps transplantable VMs together.
package orchestrator

import (
	"fmt"
	"sort"
	"time"

	"hypertp/internal/checkpoint"
	"hypertp/internal/core"
	"hypertp/internal/fault"
	"hypertp/internal/hterr"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/migration"
	"hypertp/internal/obs"
	"hypertp/internal/reactive"
	"hypertp/internal/sched"
	"hypertp/internal/simnet"
	"hypertp/internal/simtime"
	"hypertp/internal/slo"
	"hypertp/internal/tpcache"
)

// ComputeDriver is the generic per-host driver interface (libvirt in the
// paper), extended with the three HyperTP operations of §4.5.2.
type ComputeDriver interface {
	// HypervisorKind reports what currently runs on the host.
	HypervisorKind() hv.Kind
	// Spawn creates and starts a VM.
	Spawn(cfg hv.Config) (hv.VMID, error)
	// Destroy tears a VM down.
	Destroy(id hv.VMID) error
	// Suspend and Resume map to the existing Nova operations the
	// HyperTP save/restore hooks are modeled on.
	Suspend(id hv.VMID) error
	Resume(id hv.VMID) error
	// VMs lists the host's VMs.
	VMs() []*hv.VM
	// Capacity returns remaining vCPU and memory headroom.
	Capacity() (vcpus int, mem uint64)

	// HostLiveUpgrade is the new driver operation: transplant the whole
	// host to the target hypervisor kind in place.
	HostLiveUpgrade(target hv.Kind, opts core.Options) (*core.InPlaceReport, error)
	// Hypervisor exposes the underlying handle for migration plumbing
	// (used by the manager, never by operators).
	Hypervisor() hv.Hypervisor
}

// LibvirtDriver implements ComputeDriver over a simulated host.
type LibvirtDriver struct {
	engine *core.Engine
	hyp    hv.Hypervisor
}

// NewLibvirtDriver boots a hypervisor of the given kind on machine and
// wraps it.
func NewLibvirtDriver(clock *simtime.Clock, machine *hw.Machine, kind hv.Kind) (*LibvirtDriver, error) {
	engine := core.NewEngine(clock, machine)
	hyp, err := engine.BootHypervisor(kind)
	if err != nil {
		return nil, err
	}
	return &LibvirtDriver{engine: engine, hyp: hyp}, nil
}

// HypervisorKind implements ComputeDriver.
func (d *LibvirtDriver) HypervisorKind() hv.Kind { return d.hyp.Kind() }

// Hypervisor implements ComputeDriver.
func (d *LibvirtDriver) Hypervisor() hv.Hypervisor { return d.hyp }

// Spawn implements ComputeDriver.
func (d *LibvirtDriver) Spawn(cfg hv.Config) (hv.VMID, error) {
	vm, err := d.hyp.CreateVM(cfg)
	if err != nil {
		return 0, err
	}
	return vm.ID, nil
}

// Destroy implements ComputeDriver.
func (d *LibvirtDriver) Destroy(id hv.VMID) error { return d.hyp.DestroyVM(id) }

// Suspend implements ComputeDriver.
func (d *LibvirtDriver) Suspend(id hv.VMID) error { return d.hyp.Pause(id) }

// Resume implements ComputeDriver.
func (d *LibvirtDriver) Resume(id hv.VMID) error { return d.hyp.Resume(id) }

// VMs implements ComputeDriver.
func (d *LibvirtDriver) VMs() []*hv.VM { return d.hyp.VMs() }

// Capacity implements ComputeDriver.
func (d *LibvirtDriver) Capacity() (int, uint64) {
	p := d.engine.Machine.Profile
	vcpus := p.Threads - p.ReservedCPUs
	mem := d.engine.Machine.Mem.FreeFrames() * hw.PageSize4K
	for _, vm := range d.hyp.VMs() {
		vcpus -= vm.Config.VCPUs
	}
	if vcpus < 0 {
		vcpus = 0
	}
	return vcpus, mem
}

// SetRecorder points the wrapped engine's observability at rec, so the
// node's in-place transplants record their span trees there.
func (d *LibvirtDriver) SetRecorder(rec *obs.Recorder) { d.engine.Obs = rec }

// SetFaults points the wrapped engine at a fault plan and retry policy,
// so in-place transplants on this host arm the kexec/PRAM/UISR sites
// and ride out post-handover crashes under the given policy. A nil plan
// detaches injection but keeps the policy.
func (d *LibvirtDriver) SetFaults(p *fault.Plan, retry fault.RetryPolicy) {
	d.engine.Fault = p
	d.engine.Retry = retry
}

// HostLiveUpgrade implements ComputeDriver: the one-click in-place
// transplant. A hypervisor fail-stop mid-transplant (the double fault)
// leaves every VM frozen in place with the device protocol already run;
// that is exactly the state the emergency path salvages, so the driver
// self-heals by running it to the same target instead of surfacing the
// crash. The returned report is the emergency's, with the aborted
// attempt's fault and attempt counts folded in.
func (d *LibvirtDriver) HostLiveUpgrade(target hv.Kind, opts core.Options) (*core.InPlaceReport, error) {
	newHyp, report, err := d.engine.InPlace(d.hyp, target, opts)
	if err != nil {
		if hterr.Class(err) == hterr.ErrHypervisorCrashed {
			rep, rerr := d.EmergencyRecover(target, opts)
			if rerr != nil {
				return nil, rerr
			}
			if report != nil {
				rep.Faults += report.Faults
				rep.Attempts += report.Attempts
			}
			return rep, nil
		}
		return nil, err
	}
	d.hyp = newHyp
	return report, nil
}

// VMRecord is one row of the Nova database.
type VMRecord struct {
	Name              string
	Node              string
	ID                hv.VMID
	Kind              hv.Kind
	InPlaceCompatible bool
}

// Nova is the cloud manager.
type Nova struct {
	clock       *simtime.Clock
	fabric      *simnet.Link
	nodes       map[string]*ComputeNode
	order       []string
	db          map[string]*VMRecord
	seed        uint64
	obs         *obs.Recorder
	faults      *fault.Plan
	retry       fault.RetryPolicy
	quarantined map[string]bool
	// fleetLimits, when non-nil, routes RespondToCVE through the
	// dependency-aware concurrent scheduler (see SetFleetLimits).
	fleetLimits *sched.Limits
	// slo, when non-nil, receives the vulnerability-window events:
	// disclosure, per-host exposure, per-host remediation at kexec
	// commit, and per-VM downtime (see SetSLO).
	slo *slo.Tracker
	// warmCache and warmSlots configure the transplant warm pool (see
	// SetWarmPool and WarmPoolRefill).
	warmCache *tpcache.Cache
	warmSlots int
	// detector and downed are the reactive-recovery state: the attached
	// failure detector and the ledger of crashed-but-unrecovered hosts
	// (see SetDetector, CrashHost, RecoverHost, RecoverFleet).
	detector *reactive.Detector
	downed   map[string]reactive.Event
}

// ComputeNode is one managed host.
type ComputeNode struct {
	Name   string
	Driver ComputeDriver
}

// NewNova creates a manager over the given fabric link.
func NewNova(clock *simtime.Clock, fabric *simnet.Link) *Nova {
	return &Nova{
		clock:       clock,
		fabric:      fabric,
		nodes:       make(map[string]*ComputeNode),
		db:          make(map[string]*VMRecord),
		seed:        1,
		quarantined: make(map[string]bool),
		downed:      make(map[string]reactive.Event),
	}
}

// Clock returns the virtual clock the manager runs on.
func (n *Nova) Clock() *simtime.Clock { return n.clock }

// AddNode registers a compute node.
func (n *Nova) AddNode(name string, driver ComputeDriver) error {
	if _, dup := n.nodes[name]; dup {
		return fmt.Errorf("nova: duplicate node %q", name)
	}
	n.nodes[name] = &ComputeNode{Name: name, Driver: driver}
	n.order = append(n.order, name)
	sort.Strings(n.order)
	if n.obs != nil {
		if rd, ok := driver.(interface{ SetRecorder(*obs.Recorder) }); ok {
			rd.SetRecorder(n.obs)
		}
	}
	if n.faults != nil {
		if fd, ok := driver.(interface {
			SetFaults(*fault.Plan, fault.RetryPolicy)
		}); ok {
			fd.SetFaults(n.faults, n.retry)
		}
	}
	return nil
}

// SetFaults attaches a deterministic fault plan to the whole cloud: the
// fabric link arms its loss/sever sites on every migration stream, node
// drivers arm the in-place transplant sites, and fleet operations arm
// fault.SiteClusterHost per host so quarantine-and-replan degradation is
// exercised. Attaching a plan also enables the default retry policy for
// live migrations (override with SetRetry). A nil plan detaches.
func (n *Nova) SetFaults(p *fault.Plan) {
	n.faults = p
	n.fabric.SetFaults(p)
	if p != nil && n.retry == (fault.RetryPolicy{}) {
		n.retry = fault.DefaultRetryPolicy()
	}
	for _, name := range n.order {
		if fd, ok := n.nodes[name].Driver.(interface {
			SetFaults(*fault.Plan, fault.RetryPolicy)
		}); ok {
			fd.SetFaults(p, n.retry)
		}
	}
}

// SetRetry overrides the retry policy live migrations and host
// transplants run under. The zero policy means a single attempt.
func (n *Nova) SetRetry(retry fault.RetryPolicy) {
	n.retry = retry
	if n.faults != nil {
		n.SetFaults(n.faults) // re-propagate to drivers
	}
}

// Quarantined reports whether a node has been quarantined by a degraded
// fleet operation. Quarantined nodes are skipped by the scheduler, by
// evacuation-target selection, and by subsequent fleet sweeps.
func (n *Nova) Quarantined(name string) bool { return n.quarantined[name] }

// Nodes returns the registered node names in sorted order.
func (n *Nova) Nodes() []string { return append([]string(nil), n.order...) }

// Quarantine marks a node failed and drains it: every VM still on the
// node is re-planned onto a healthy host via live migration, and VMs
// with no viable destination are stranded — they keep running on the
// quarantined host rather than being lost. The node is then skipped by
// the scheduler and by fleet sweeps until Return.
func (n *Nova) Quarantine(name string) (replanned, stranded []string, err error) {
	if _, ok := n.nodes[name]; !ok {
		return nil, nil, fmt.Errorf("nova: unknown node %q", name)
	}
	if n.quarantined[name] {
		return nil, nil, fmt.Errorf("nova: node %q already quarantined", name)
	}
	n.quarantined[name] = true
	sp := n.obs.Start("nova.quarantine", obs.A("node", name))
	defer sp.End()
	n.obs.Metrics().Counter("nova.hosts_quarantined", "hosts").Add(1)
	replanned, stranded = n.drainNode(name)
	sp.SetAttr("replanned", len(replanned))
	return replanned, stranded, nil
}

// Return brings a quarantined node back into scheduling — the operator
// repaired or replaced it. VMs stranded on the node simply stay; the
// scheduler may place new work there again.
func (n *Nova) Return(name string) error {
	if _, ok := n.nodes[name]; !ok {
		return fmt.Errorf("nova: unknown node %q", name)
	}
	if !n.quarantined[name] {
		return fmt.Errorf("nova: node %q is not quarantined", name)
	}
	delete(n.quarantined, name)
	return nil
}

// drainNode live-migrates every VM off a node, best-effort: VMs with no
// viable destination (or whose migration fails) are stranded in place.
func (n *Nova) drainNode(name string) (replanned, stranded []string) {
	node := n.nodes[name]
	vms := append([]*hv.VM(nil), node.Driver.VMs()...)
	for _, vm := range vms {
		dest := n.pickEvacuationTarget(name, vm)
		if dest == "" {
			stranded = append(stranded, vm.Config.Name)
			continue
		}
		if _, err := n.LiveMigrate(vm.Config.Name, dest); err != nil {
			stranded = append(stranded, vm.Config.Name)
			continue
		}
		replanned = append(replanned, vm.Config.Name)
	}
	return replanned, stranded
}

// reconcileLostHost reconciles the database after a host-level VM loss:
// every row placed on the node is purged — the host died mid-transplant,
// so its VMs no longer run anywhere — and the node is quarantined so the
// scheduler stops placing work on it. Without this, dead rows keep
// pointing operators (and the chaos auditor's bookkeeping invariant) at
// VMs that do not exist.
func (n *Nova) reconcileLostHost(name string) {
	for vmName, rec := range n.db {
		if rec.Node == name {
			delete(n.db, vmName)
		}
	}
	if !n.quarantined[name] {
		n.quarantined[name] = true
		n.obs.Metrics().Counter("nova.hosts_quarantined", "hosts").Add(1)
	}
}

// SetSLO attaches a vulnerability-window tracker. RespondToCVE then
// opens each affected host's exposure interval at disclosure, declares
// the record's remediation-window target, closes the interval when the
// host's transplant commits, and feeds per-VM downtime from transplant
// blackouts and migration stop-and-copy rounds. A nil tracker detaches.
func (n *Nova) SetSLO(t *slo.Tracker) { n.slo = t }

// SLO returns the attached tracker (nil when detached).
func (n *Nova) SLO() *slo.Tracker { return n.slo }

// SetRecorder attaches an observability recorder to the manager and to
// every registered (and future) driver that supports one, plus the
// fabric link. Nova operations then record nova.* spans with the driver
// and network activity nested beneath them.
func (n *Nova) SetRecorder(rec *obs.Recorder) {
	n.obs = rec
	n.fabric.SetRecorder(rec)
	for _, name := range n.order {
		if rd, ok := n.nodes[name].Driver.(interface{ SetRecorder(*obs.Recorder) }); ok {
			rd.SetRecorder(rec)
		}
	}
}

// Node returns a registered node.
func (n *Nova) Node(name string) (*ComputeNode, bool) {
	node, ok := n.nodes[name]
	return node, ok
}

// Records returns the database rows sorted by VM name.
func (n *Nova) Records() []VMRecord {
	names := make([]string, 0, len(n.db))
	for name := range n.db {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]VMRecord, 0, len(names))
	for _, name := range names {
		out = append(out, *n.db[name])
	}
	return out
}

// Record returns one VM's database row.
func (n *Nova) Record(name string) (VMRecord, bool) {
	r, ok := n.db[name]
	if !ok {
		return VMRecord{}, false
	}
	return *r, true
}

// BootVM schedules and spawns a VM. The scheduler applies a capacity
// filter and the HyperTP-aware affinity filter of §4.5.2: hosts whose
// population matches the VM's transplantability are weighted up, so
// transplantable VMs consolidate and whole hosts stay upgradable with a
// single InPlaceTP.
func (n *Nova) BootVM(cfg hv.Config) (string, error) {
	if _, dup := n.db[cfg.Name]; dup {
		return "", fmt.Errorf("nova: VM %q already exists", cfg.Name)
	}
	var best *ComputeNode
	bestScore := -1 << 30
	for _, name := range n.order {
		if n.quarantined[name] || n.HostDowned(name) {
			continue
		}
		node := n.nodes[name]
		vcpus, mem := node.Driver.Capacity()
		if vcpus < cfg.VCPUs || mem < cfg.MemBytes {
			continue
		}
		score := 0
		// HyperTP affinity: count co-located VMs with matching
		// transplantability, penalize mismatches.
		for _, vm := range node.Driver.VMs() {
			if vm.Config.InPlaceCompatible == cfg.InPlaceCompatible {
				score += 2
			} else {
				score -= 3
			}
		}
		// Light packing preference: fuller nodes first, so empty
		// nodes stay free for evacuation headroom.
		score += len(node.Driver.VMs())
		if score > bestScore {
			best, bestScore = node, score
		}
	}
	if best == nil {
		return "", fmt.Errorf("nova: no node fits VM %q", cfg.Name)
	}
	id, err := best.Driver.Spawn(cfg)
	if err != nil {
		return "", err
	}
	n.db[cfg.Name] = &VMRecord{
		Name: cfg.Name, Node: best.Name, ID: id,
		Kind:              best.Driver.HypervisorKind(),
		InPlaceCompatible: cfg.InPlaceCompatible,
	}
	return best.Name, nil
}

// LiveMigrate moves one VM to another node (the existing Nova
// live_migration operation, heterogeneous-capable through the UISR
// proxies).
func (n *Nova) LiveMigrate(vmName, destNode string) (*migration.Report, error) {
	rec, ok := n.db[vmName]
	if !ok {
		return nil, fmt.Errorf("nova: unknown VM %q", vmName)
	}
	dest, ok := n.nodes[destNode]
	if !ok {
		return nil, fmt.Errorf("nova: unknown node %q", destNode)
	}
	if rec.Node == destNode {
		return nil, fmt.Errorf("nova: VM %q already on %q", vmName, destNode)
	}
	src := n.nodes[rec.Node]
	n.seed++
	recv := migration.NewReceiver(n.clock, dest.Driver.Hypervisor(), n.seed)
	sp := n.obs.Start("nova.live-migrate",
		obs.A("vm", vmName), obs.A("from", rec.Node), obs.A("to", destNode))
	defer sp.End()
	var report *migration.Report
	var err error
	migration.Run(n.clock, migration.Params{
		Link:   n.fabric,
		Source: src.Driver.Hypervisor(),
		Dest:   recv,
		VMID:   rec.ID,
		Obs:    n.obs,
		Retry:  n.retry,
	}, func(r *migration.Report, e error) { report, err = r, e })
	n.clock.Run()
	if err != nil {
		// A lost VM was destroyed mid-stream; keeping its row would place
		// a VM that no host runs.
		if hterr.Class(err) == hterr.ErrVMLost {
			delete(n.db, vmName)
		}
		return nil, err
	}
	rec.Node = destNode
	rec.ID = report.DestVM.ID
	rec.Kind = dest.Driver.HypervisorKind()
	n.slo.AddVMDowntime(vmName, report.Downtime)
	return report, nil
}

// ColdMigrate moves a VM between nodes without a live link: the §4.5.2
// guest-state-saving path — suspend, checkpoint, destroy, restore on the
// destination, resume. Unlike LiveMigrate, the VM is down for the whole
// operation; the payoff is that it works across any pool pair and needs
// no migration stream.
func (n *Nova) ColdMigrate(vmName, destNode string) error {
	rec, ok := n.db[vmName]
	if !ok {
		return fmt.Errorf("nova: unknown VM %q", vmName)
	}
	dest, ok := n.nodes[destNode]
	if !ok {
		return fmt.Errorf("nova: unknown node %q", destNode)
	}
	if rec.Node == destNode {
		return fmt.Errorf("nova: VM %q already on %q", vmName, destNode)
	}
	src := n.nodes[rec.Node]
	srcHyp := src.Driver.Hypervisor()
	vm, ok := srcHyp.LookupVM(rec.ID)
	if !ok {
		return hterr.VMLost(fmt.Errorf("nova: VM %q missing from node %q", vmName, rec.Node))
	}
	sp := n.obs.Start("nova.cold-migrate",
		obs.A("vm", vmName), obs.A("from", rec.Node), obs.A("to", destNode))
	defer sp.End()
	g := vm.Guest
	if err := srcHyp.Pause(rec.ID); err != nil {
		return err
	}
	img, err := checkpoint.Save(srcHyp, rec.ID)
	if err != nil {
		return err
	}
	// Durable round trip, as the real operation would store to shared
	// storage.
	data, err := checkpoint.Serialize(img)
	if err != nil {
		return err
	}
	if err := srcHyp.DestroyVM(rec.ID); err != nil {
		return err
	}
	// Past this point the source copy is gone: a failure is a real loss,
	// and the database row must not keep pointing at a dead VM.
	lost := func(e error) error {
		delete(n.db, vmName)
		return hterr.VMLost(e)
	}
	img, err = checkpoint.Deserialize(data)
	if err != nil {
		return lost(err)
	}
	destHyp := dest.Driver.Hypervisor()
	restored, err := checkpoint.Restore(destHyp, img)
	if err != nil {
		return lost(err)
	}
	if g != nil {
		if err := destHyp.AttachGuest(restored.ID, g); err != nil {
			return lost(err)
		}
	}
	if err := destHyp.Resume(restored.ID); err != nil {
		return lost(err)
	}
	rec.Node = destNode
	rec.ID = restored.ID
	rec.Kind = dest.Driver.HypervisorKind()
	return nil
}

// UpgradeRecord summarizes a HostLiveUpgrade call.
type UpgradeRecord struct {
	Node         string
	Target       hv.Kind
	EvacuatedVMs []string
	Report       *core.InPlaceReport
	Elapsed      time.Duration
}

// HostLiveUpgrade is the §4.5.2 one-click API: VMs that do not support
// InPlaceTP are live-migrated away (the Evacuate-like path), the host is
// transplanted in place, and the database is updated to the new
// hypervisor.
func (n *Nova) HostLiveUpgrade(nodeName string, target hv.Kind, opts core.Options) (*UpgradeRecord, error) {
	node, ok := n.nodes[nodeName]
	if !ok {
		return nil, fmt.Errorf("nova: unknown node %q", nodeName)
	}
	if node.Driver.HypervisorKind() == target {
		return nil, hterr.Incompatible(fmt.Errorf("nova: node %q already runs %v", nodeName, target))
	}
	start := n.clock.Now()
	rec := &UpgradeRecord{Node: nodeName, Target: target}
	sp := n.obs.Start("nova.host-live-upgrade",
		obs.A("node", nodeName), obs.A("target", target))
	defer sp.End()

	// Evacuate incompatible VMs.
	for _, vm := range node.Driver.VMs() {
		if vm.Config.InPlaceCompatible {
			continue
		}
		dest := n.pickEvacuationTarget(nodeName, vm)
		if dest == "" {
			// Nothing has been touched on this host yet: the upgrade is
			// abandoned cleanly, every VM keeps running where it was.
			return nil, hterr.Abort(fmt.Errorf("nova: no evacuation target for VM %q", vm.Config.Name))
		}
		if _, err := n.LiveMigrate(vm.Config.Name, dest); err != nil {
			return nil, err
		}
		rec.EvacuatedVMs = append(rec.EvacuatedVMs, vm.Config.Name)
	}
	sp.SetAttr("evacuated", len(rec.EvacuatedVMs))

	// In-place transplant of the remaining (compatible) VMs. A host
	// with no remaining VMs just reboots into the target.
	if len(node.Driver.VMs()) > 0 {
		report, err := node.Driver.HostLiveUpgrade(target, opts)
		if err != nil {
			if hterr.Class(err) == hterr.ErrVMLost {
				n.reconcileLostHost(nodeName)
			}
			return nil, err
		}
		rec.Report = report
		// Update the database rows of the transplanted VMs. Every VM on
		// the host shares the kexec blackout window.
		for _, res := range report.VMs {
			if r, ok := n.db[res.Name]; ok {
				r.ID = res.NewID
				r.Kind = target
			}
			n.slo.AddVMDowntime(res.Name, report.Downtime)
		}
	} else {
		if err := rebootEmptyHost(node.Driver, target); err != nil {
			return nil, err
		}
	}
	rec.Elapsed = n.clock.Now() - start
	return rec, nil
}

// pickEvacuationTarget chooses the node with the most capacity.
func (n *Nova) pickEvacuationTarget(exclude string, vm *hv.VM) string {
	best := ""
	bestCPU := -1
	for _, name := range n.order {
		if name == exclude || n.quarantined[name] || n.HostDowned(name) {
			continue
		}
		vcpus, mem := n.nodes[name].Driver.Capacity()
		if vcpus < vm.Config.VCPUs || mem < vm.Config.MemBytes {
			continue
		}
		if vcpus > bestCPU {
			best, bestCPU = name, vcpus
		}
	}
	return best
}

// rebootEmptyHost swaps the hypervisor on a host with no VMs.
func rebootEmptyHost(d ComputeDriver, target hv.Kind) error {
	ld, ok := d.(*LibvirtDriver)
	if !ok {
		return hterr.Incompatible(fmt.Errorf("nova: driver %T cannot reboot empty host", d))
	}
	// A plain reboot: wipe and boot the target. No state to preserve.
	ld.engine.Machine.MicroReboot("fresh-boot", nil)
	hyp, err := ld.engine.BootHypervisor(target)
	if err != nil {
		return err
	}
	ld.hyp = hyp
	return nil
}
