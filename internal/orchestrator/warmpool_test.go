package orchestrator

import (
	"fmt"
	"reflect"
	"testing"

	"hypertp/internal/core"
	"hypertp/internal/hv"
	"hypertp/internal/sched"
	"hypertp/internal/tpcache"
	"hypertp/internal/vulndb"
)

// TestWarmPoolRefillAndRespond: pre-staging fills the pool with warm
// translation entries at zero virtual cost, the next fleet response
// consumes them as warm starts, and the response is byte-identical to
// the one an un-warmed fleet produces.
func TestWarmPoolRefillAndRespond(t *testing.T) {
	respond := func(warm bool) (*FleetResponse, tpcache.Stats) {
		c := newCloud(t, 2, hv.KindXen)
		for i := 0; i < 4; i++ {
			if _, err := c.nova.BootVM(vmCfg("t"+string(rune('0'+i)), true)); err != nil {
				t.Fatal(err)
			}
		}
		cache := tpcache.New()
		opts := core.DefaultOptions()
		opts.Cache = cache
		if warm {
			c.nova.SetWarmPool(cache, 8)
			before := c.clock.Now()
			staged, err := c.nova.WarmPoolRefill()
			if err != nil {
				t.Fatal(err)
			}
			if staged != 4 {
				t.Fatalf("staged %d entries, want 4", staged)
			}
			if c.clock.Now() != before {
				t.Fatal("warm pool refill charged virtual time")
			}
			if cache.WarmSlots() != 4 {
				t.Fatalf("WarmSlots = %d, want 4", cache.WarmSlots())
			}
			// Refilling a full pool stages nothing.
			if again, err := c.nova.WarmPoolRefill(); err != nil || again != 0 {
				t.Fatalf("refill of full pool: staged %d, err %v", again, err)
			}
			for _, vm := range allVMs(c.nova) {
				if vm.Paused() {
					t.Fatalf("VM %q left paused by pre-staging", vm.Config.Name)
				}
			}
		}
		resp, err := c.nova.RespondToCVE(vulndb.Load(), "CVE-2016-6258", []string{"xen", "kvm"}, opts)
		if err != nil {
			t.Fatal(err)
		}
		return resp, cache.Stats()
	}

	warmResp, warmStats := respond(true)
	coldResp, _ := respond(false)

	if warmStats.WarmStarts != 4 {
		t.Fatalf("warm starts = %d, want 4: %+v", warmStats.WarmStarts, warmStats)
	}
	if warmStats.WarmSlots != 0 {
		t.Fatalf("pool not drained: %+v", warmStats)
	}
	// The response itself must not betray the cache: same outcome, same
	// virtual timings, same per-node reports. Records hold pointers, so
	// flatten them before comparing.
	flat := func(r *FleetResponse) string {
		cp := *r
		cp.Records = nil
		out := fmt.Sprintf("%+v", cp)
		for _, rec := range r.Records {
			rcp := *rec
			rcp.Report = nil
			out += fmt.Sprintf("\n%+v", rcp)
			if rec.Report != nil {
				// The cache counters are the one report difference warm
				// starts are allowed to make.
				rr := *rec.Report
				rr.CacheHits, rr.CacheMisses, rr.CacheWarmStarts = 0, 0, 0
				out += fmt.Sprintf(" %+v", rr)
			}
		}
		return out
	}
	if a, b := flat(warmResp), flat(coldResp); a != b {
		t.Fatalf("warm and cold fleet responses differ:\n%s\nvs\n%s", a, b)
	}
}

// TestWarmPoolSpareSlotThrottle: with fleet limits attached, one refill
// pass stages at most SpareSlots entries — the pool shares the spare
// capacity knob with evacuations — and repeated passes finish the job.
func TestWarmPoolSpareSlotThrottle(t *testing.T) {
	c := newCloud(t, 2, hv.KindXen)
	for i := 0; i < 4; i++ {
		if _, err := c.nova.BootVM(vmCfg("t"+string(rune('0'+i)), true)); err != nil {
			t.Fatal(err)
		}
	}
	cache := tpcache.New()
	c.nova.SetWarmPool(cache, 4)
	c.nova.SetFleetLimits(&sched.Limits{MaxKexecs: 1, SpareSlots: 1})
	for pass := 1; pass <= 4; pass++ {
		staged, err := c.nova.WarmPoolRefill()
		if err != nil {
			t.Fatal(err)
		}
		if staged != 1 {
			t.Fatalf("pass %d staged %d, want 1 (SpareSlots throttle)", pass, staged)
		}
		if got := cache.WarmSlots(); got != pass {
			t.Fatalf("pass %d: WarmSlots = %d, want %d", pass, got, pass)
		}
	}
	if staged, err := c.nova.WarmPoolRefill(); err != nil || staged != 0 {
		t.Fatalf("full pool: staged %d, err %v", staged, err)
	}
}

// TestWarmPoolErrors: refill without a pool is an error; a pool with no
// eligible VMs stages zero.
func TestWarmPoolErrors(t *testing.T) {
	c := newCloud(t, 1, hv.KindXen)
	if _, err := c.nova.WarmPoolRefill(); err == nil {
		t.Fatal("refill without a configured pool succeeded")
	}
	cache := tpcache.New()
	c.nova.SetWarmPool(cache, 4)
	staged, err := c.nova.WarmPoolRefill()
	if err != nil || staged != 0 {
		t.Fatalf("empty fleet: staged %d, err %v", staged, err)
	}
	// Incompatible VMs are not staged.
	if _, err := c.nova.BootVM(vmCfg("legacy", false)); err != nil {
		t.Fatal(err)
	}
	staged, err = c.nova.WarmPoolRefill()
	if err != nil || staged != 0 {
		t.Fatalf("incompatible VM staged: %d, err %v", staged, err)
	}
	if !reflect.DeepEqual(cache.Stats(), tpcache.Stats{}) {
		t.Fatalf("stats touched: %+v", cache.Stats())
	}
}
