package orchestrator

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"hypertp/internal/core"
	"hypertp/internal/fault"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/obs"
	"hypertp/internal/par"
	"hypertp/internal/report"
	"hypertp/internal/sched"
	"hypertp/internal/simnet"
	"hypertp/internal/simtime"
	"hypertp/internal/slo"
	"hypertp/internal/tpcache"
	"hypertp/internal/vulndb"
)

// fleetSpec sizes a synthetic all-Xen fleet. Hosts use a slimmed M1
// profile so even 200-host fleets stay cheap to build; every fourth VM
// is InPlaceTP-incompatible so responses mix evacuations with
// transplants the way the chaos harness does.
type fleetSpec struct {
	hosts   int
	vms     int
	vmMem   uint64
	hostRAM uint64
	threads int
}

func stockFleet() fleetSpec {
	// The stock 8-host/2-spare scenario: 32 one-vCPU VMs pack eight
	// 6-vCPU hosts (affinity + capacity), leaving two hosts empty as
	// spares.
	return fleetSpec{hosts: 10, vms: 32, vmMem: 64 << 20, hostRAM: 2 * hw.GiB, threads: 8}
}

func bigFleet() fleetSpec {
	// The 200-host/1600-VM benchmark scale; small VMs keep the dense
	// frame tables affordable.
	return fleetSpec{hosts: 200, vms: 1600, vmMem: 16 << 20, hostRAM: hw.GiB / 2, threads: 12}
}

func newFleet(tb testing.TB, spec fleetSpec) *cloud {
	tb.Helper()
	clock := simtime.NewClock()
	fabric := simnet.NewLink(clock, "fabric", simnet.Gbps10, 100*time.Microsecond)
	nova := NewNova(clock, fabric)
	for i := 0; i < spec.hosts; i++ {
		name := fmt.Sprintf("host-%03d", i)
		prof := hw.M1()
		prof.Name = name
		prof.RAMBytes = spec.hostRAM
		prof.Threads = spec.threads
		d, err := NewLibvirtDriver(clock, hw.NewMachine(clock, prof), hv.KindXen)
		if err != nil {
			tb.Fatal(err)
		}
		if err := nova.AddNode(name, d); err != nil {
			tb.Fatal(err)
		}
	}
	for i := 0; i < spec.vms; i++ {
		name := fmt.Sprintf("vm-%04d", i)
		_, err := nova.BootVM(hv.Config{
			Name: name, VCPUs: 1, MemBytes: spec.vmMem, HugePages: true,
			Seed: 7 + uint64(i), InPlaceCompatible: i%4 != 3,
		})
		if err != nil {
			tb.Fatal(err)
		}
	}
	return &cloud{clock: clock, nova: nova}
}

// respondFleet runs the stock CVE response under the given limits.
func respondFleet(tb testing.TB, c *cloud, limits sched.Limits) *FleetResponse {
	tb.Helper()
	c.nova.SetFleetLimits(&limits)
	resp, err := c.nova.RespondToCVE(vulndb.Load(), "CVE-2016-6258", []string{"xen", "kvm"}, core.DefaultOptions())
	if err != nil {
		tb.Fatal(err)
	}
	return resp
}

// placement flattens the database into comparable placement lines.
func placement(n *Nova) []string {
	var out []string
	for _, rec := range n.Records() {
		out = append(out, fmt.Sprintf("%s@%s:%v", rec.Name, rec.Node, rec.Kind))
	}
	return out
}

func TestFleetResponseConcurrentSpeedupAndPlacement(t *testing.T) {
	serial := newFleet(t, stockFleet())
	rSerial := respondFleet(t, serial, sched.Serial())

	conc := newFleet(t, stockFleet())
	rConc := respondFleet(t, conc, sched.Limits{MaxKexecs: 4, LinkStreams: 4})

	if rSerial.Outcome != report.OutcomeCompleted || rConc.Outcome != report.OutcomeCompleted {
		t.Fatalf("outcomes: serial %s, concurrent %s", rSerial.Outcome, rConc.Outcome)
	}
	if len(rConc.UpgradedNodes) != stockFleet().hosts {
		t.Fatalf("concurrent upgraded %d hosts, want %d", len(rConc.UpgradedNodes), stockFleet().hosts)
	}
	// Same planner, same placement decisions: the final world must be
	// identical; only the timeline compresses.
	ps, pc := placement(serial.nova), placement(conc.nova)
	if fmt.Sprint(ps) != fmt.Sprint(pc) {
		t.Fatalf("placement diverged:\nserial:     %v\nconcurrent: %v", ps, pc)
	}
	if rConc.Elapsed*2 > rSerial.Elapsed {
		t.Fatalf("makespan %v not >=2x better than serial %v", rConc.Elapsed, rSerial.Elapsed)
	}
	// Whole fleet secured with guest state intact.
	for _, name := range conc.nova.Nodes() {
		node, _ := conc.nova.Node(name)
		if node.Driver.HypervisorKind() != hv.KindKVM {
			t.Fatalf("node %s still on %v", name, node.Driver.HypervisorKind())
		}
		for _, vm := range node.Driver.VMs() {
			if err := vm.Guest.Verify(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestFleetResponseSpansWellNested(t *testing.T) {
	c := newFleet(t, stockFleet())
	rec := obs.NewRecorder(c.clock)
	c.nova.SetRecorder(rec)
	respondFleet(t, c, sched.Limits{MaxKexecs: 4, LinkStreams: 4})
	if vs := rec.AuditSpans(); vs != nil {
		t.Fatalf("span violations after concurrent response: %v", vs)
	}
	roots := rec.Roots()
	var found bool
	for _, r := range roots {
		if r.Name == "nova.respond-cve" {
			found = true
			if len(r.Children()) == 0 {
				t.Fatal("respond-cve span has no children")
			}
		}
	}
	if !found {
		t.Fatal("no nova.respond-cve root span")
	}
}

// An injected host failure mid-schedule: the host is quarantined, its
// VMs replan as drain migrations through the same scheduler, and the
// response completes degraded — the scheduled twin of
// TestRespondToCVEDegradesOnHostFault.
func TestFleetResponseHostFaultReplansMidSchedule(t *testing.T) {
	c := newFleet(t, stockFleet())
	c.nova.SetFaults(fault.NewPlan(11, 0).ForceAt(fault.SiteClusterHost, 1))
	c.nova.SetFleetLimits(&sched.Limits{MaxKexecs: 4, LinkStreams: 4})
	resp, err := c.nova.RespondToCVE(vulndb.Load(), "CVE-2016-6258", []string{"xen", "kvm"}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != report.OutcomeDegraded || resp.Faults != 1 {
		t.Fatalf("outcome = %s faults = %d, want degraded/1", resp.Outcome, resp.Faults)
	}
	if len(resp.QuarantinedNodes) != 1 {
		t.Fatalf("quarantined = %v, want exactly one host", resp.QuarantinedNodes)
	}
	q := resp.QuarantinedNodes[0]
	if !c.nova.Quarantined(q) {
		t.Fatal("host not marked quarantined")
	}
	// Every database row still points at a live VM on a healthy host.
	for _, rec := range c.nova.Records() {
		if rec.Node == q {
			t.Fatalf("VM %s still recorded on quarantined host", rec.Name)
		}
		node, _ := c.nova.Node(rec.Node)
		vm, ok := node.Driver.Hypervisor().LookupVM(rec.ID)
		if !ok {
			t.Fatalf("VM %s unreachable on %s", rec.Name, rec.Node)
		}
		if err := vm.Guest.Verify(); err != nil {
			t.Fatal(err)
		}
	}
	if len(resp.ReplannedVMs)+len(resp.StrandedVMs) == 0 && vmCount(c.nova, q) > 0 {
		t.Fatal("quarantined host had VMs but none were replanned or stranded")
	}
}

func vmCount(n *Nova, host string) int {
	node, _ := n.Node(host)
	return len(node.Driver.VMs())
}

// fleetReportBytes serializes everything observable about a response:
// the report itself, the final placement, and the virtual makespan.
func fleetReportBytes(tb testing.TB, c *cloud, resp *FleetResponse) []byte {
	tb.Helper()
	blob, err := json.Marshal(struct {
		Resp      *FleetResponse
		Placement []string
		Now       time.Duration
	}{resp, placement(c.nova), c.clock.Now()})
	if err != nil {
		tb.Fatal(err)
	}
	return blob
}

// The 200-host fleet report must be byte-identical for any worker-pool
// width — the same contract every prior layer holds.
func TestFleetResponseDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("200-host fleet in -short mode")
	}
	run := func(workers int) []byte {
		old := par.Workers()
		par.SetWorkers(workers)
		defer par.SetWorkers(old)
		c := newFleet(t, bigFleet())
		resp := respondFleet(t, c, sched.Limits{MaxKexecs: 8, LinkStreams: 8})
		return fleetReportBytes(t, c, resp)
	}
	b1 := run(1)
	b8 := run(8)
	if string(b1) != string(b8) {
		t.Fatalf("fleet report differs across workers:\n-workers 1: %s\n-workers 8: %s", b1, b8)
	}
}

func BenchmarkFleetResponse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := newFleet(b, bigFleet())
		b.StartTimer()
		resp := respondFleet(b, c, sched.Limits{MaxKexecs: 8, LinkStreams: 8})
		if len(resp.UpgradedNodes) != bigFleet().hosts {
			b.Fatalf("upgraded %d hosts, want %d", len(resp.UpgradedNodes), bigFleet().hosts)
		}
	}
}

// BenchmarkFleetResponseWarm is the 200-host response starting from a
// full warm pool: every transplantable VM's translation is pre-staged
// into a shared cache before the timer starts (the refill runs before
// fleet limits are set, so SpareSlots throttling does not apply), and
// the response itself runs with that cache attached. Compared against
// BenchmarkFleetResponse it is the wall-clock value of pre-staging
// outside the vulnerability window.
func BenchmarkFleetResponseWarm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := newFleet(b, bigFleet())
		cache := tpcache.New()
		c.nova.SetWarmPool(cache, bigFleet().vms)
		if _, err := c.nova.WarmPoolRefill(); err != nil {
			b.Fatal(err)
		}
		opts := core.DefaultOptions()
		opts.Cache = cache
		limits := sched.Limits{MaxKexecs: 8, LinkStreams: 8}
		c.nova.SetFleetLimits(&limits)
		b.StartTimer()
		resp, err := c.nova.RespondToCVE(vulndb.Load(), "CVE-2016-6258", []string{"xen", "kvm"}, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.UpgradedNodes) != bigFleet().hosts {
			b.Fatalf("upgraded %d hosts, want %d", len(resp.UpgradedNodes), bigFleet().hosts)
		}
		if s := resp.Summary(); s.CacheWarmStarts == 0 {
			b.Fatalf("response never consumed the warm pool: %+v", s)
		}
	}
}

// BenchmarkFleetResponseSLO is the same 200-host response with the full
// SLO/streaming observability path attached: recorder with retention
// released, head-sampled flight recorder sink, and the
// vulnerability-window tracker. Compared against BenchmarkFleetResponse
// it is the end-to-end instrumentation tax of the export mode, gated at
// ≤5% (BENCH_PR7.json).
func BenchmarkFleetResponseSLO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := newFleet(b, bigFleet())
		rec := obs.NewRecorder(c.clock)
		rec.SetRetain(false)
		rec.AddSink(obs.NewHeadSampler(1, 0.1, obs.NewFlightRecorder(256)))
		c.nova.SetRecorder(rec)
		tracker := slo.NewTracker()
		tracker.SetRegistry(rec.Metrics())
		c.nova.SetSLO(tracker)
		b.StartTimer()
		resp := respondFleet(b, c, sched.Limits{MaxKexecs: 8, LinkStreams: 8})
		if len(resp.UpgradedNodes) != bigFleet().hosts {
			b.Fatalf("upgraded %d hosts, want %d", len(resp.UpgradedNodes), bigFleet().hosts)
		}
		if !tracker.Pass(c.clock.Now()) {
			b.Fatal("fleet SLO violated")
		}
	}
}
