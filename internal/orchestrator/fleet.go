package orchestrator

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"hypertp/internal/core"
	"hypertp/internal/fault"
	"hypertp/internal/hterr"
	"hypertp/internal/hv"
	"hypertp/internal/migration"
	"hypertp/internal/obs"
	"hypertp/internal/report"
	"hypertp/internal/sched"
	"hypertp/internal/simnet"
	"hypertp/internal/simtime"
	"hypertp/internal/slo"
	"hypertp/internal/vulndb"
)

// errFleetHostFault marks an injected SiteClusterHost failure caught at
// transplant admission: the host is quarantined instead of upgraded.
var errFleetHostFault = hterr.Injected(errors.New("nova: injected host failure during upgrade window"))

// SetFleetLimits switches RespondToCVE onto the dependency-aware
// concurrent fleet scheduler (internal/sched): the response is planned
// as a DAG of host-level operations — evacuation migrations feeding
// in-place transplants, spare reboots unlocking evacuation capacity —
// and executed under the given limits on a shared virtual-time
// makespan. A nil limits restores the legacy one-host-at-a-time path.
// Limits with Serial set run the same planner one operation at a time,
// which is the baseline the speedup acceptance compares against.
func (n *Nova) SetFleetLimits(l *sched.Limits) { n.fleetLimits = l }

// FleetLimits returns the configured scheduler limits (nil = legacy
// serial path).
func (n *Nova) FleetLimits() *sched.Limits { return n.fleetLimits }

// kindFromName maps a vulndb pool member name to a hypervisor kind.
func kindFromName(name string) (hv.Kind, error) {
	switch name {
	case "xen":
		return hv.KindXen, nil
	case "kvm":
		return hv.KindKVM, nil
	case "nova":
		return hv.KindNOVA, nil
	default:
		return 0, fmt.Errorf("nova: policy chose unknown hypervisor %q", name)
	}
}

// fleetHostPlan is the planning and bookkeeping state for one affected
// host in a scheduled response.
type fleetHostPlan struct {
	name     string
	node     *ComputeNode
	target   hv.Kind
	incompat []*hv.VM

	// pendingEvacs tracks VMs with a not-yet-committed migration node,
	// so a quarantine drain does not double-plan them.
	pendingEvacs map[string]bool
	evacuated    []string

	tp        *sched.Node
	tpStart   time.Duration
	first     time.Duration
	firstSet  bool
	hostFault bool
	report    *core.InPlaceReport
}

func (hp *fleetHostPlan) markFirst(t time.Duration) {
	if !hp.firstSet {
		hp.first, hp.firstSet = t, true
	}
}

// fleetSpan is a span recorded during sequential Commit hooks and
// emitted after the schedule: children must be attached in monotone
// start order (obs.AuditSpans), which completion order does not give.
type fleetSpan struct {
	name       string
	start, end time.Duration
	attrs      []obs.Attr
}

// respondScheduled is the concurrent fleet response: RespondToCVE's
// body when fleet limits are configured. Planning (target selection,
// evacuation placement against a capacity overlay, DAG construction)
// is sequential in name order; execution runs on the scheduler with
// host-exclusive resources, per-task private clocks/links, and derived
// fault plans, so results are byte-identical for any -workers value.
func (n *Nova) respondScheduled(db *vulndb.Database, vrec *vulndb.Record, cveID string, pool []string, opts core.Options) (*FleetResponse, error) {
	for _, name := range n.order {
		if _, ok := n.nodes[name].Driver.(*LibvirtDriver); !ok {
			return nil, fmt.Errorf("nova: fleet scheduler requires libvirt drivers; node %q has %T", name, n.nodes[name].Driver)
		}
	}

	base := n.clock.Now()
	resp := &FleetResponse{CVE: cveID, Outcome: report.OutcomeCompleted}
	n.slo.SetTarget(cveID, base, slo.Target{Quantile: slo.DefaultQuantile, Window: vrec.RemediationWindow()})

	// Pass A: affected set and per-host targets, in name order.
	plans := make(map[string]*fleetHostPlan)
	var order []string
	for _, name := range n.order {
		if n.quarantined[name] || n.HostDowned(name) {
			continue
		}
		node := n.nodes[name]
		current := node.Driver.HypervisorKind().String()
		if !vrec.Affected(current) {
			resp.SkippedNodes = append(resp.SkippedNodes, name)
			continue
		}
		targetName, err := db.SelectTarget(current, []string{cveID}, pool)
		if err != nil {
			return nil, fmt.Errorf("nova: node %s: %w", name, err)
		}
		target, err := kindFromName(targetName)
		if err != nil {
			return nil, err
		}
		n.slo.Expose(cveID, name, base)
		hp := &fleetHostPlan{name: name, node: node, target: target, pendingEvacs: make(map[string]bool)}
		for _, vm := range node.Driver.VMs() {
			if !vm.Config.InPlaceCompatible {
				hp.incompat = append(hp.incompat, vm)
			}
		}
		plans[name] = hp
		order = append(order, name)
		resp.Target = target
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("nova: no node runs a hypervisor affected by %s", cveID)
	}

	// Capacity overlay: planned placements claim headroom up front so
	// concurrent migrations cannot oversubscribe a destination.
	type capacity struct {
		vcpus int
		mem   uint64
	}
	avail := make(map[string]*capacity)
	for _, name := range n.order {
		if n.quarantined[name] || n.HostDowned(name) {
			continue
		}
		v, m := n.nodes[name].Driver.Capacity()
		avail[name] = &capacity{vcpus: v, mem: m}
	}
	// pickDest mirrors pickEvacuationTarget (most free vCPUs wins)
	// against the overlay. Affected hosts that must themselves
	// evacuate are not eligible destinations: routing a VM there would
	// create a cyclic dependency between the two hosts' pipelines.
	pickDest := func(src string, vm *hv.VM) string {
		best := ""
		bestCPU := -1
		for _, name := range n.order {
			if name == src || n.quarantined[name] || n.HostDowned(name) {
				continue
			}
			if hp := plans[name]; hp != nil && len(hp.incompat) > 0 {
				continue
			}
			c := avail[name]
			if c == nil || c.vcpus < vm.Config.VCPUs || c.mem < vm.Config.MemBytes {
				continue
			}
			if c.vcpus > bestCPU {
				best, bestCPU = name, c.vcpus
			}
		}
		return best
	}
	claimDest := func(src, dest string, vm *hv.VM) {
		if c := avail[dest]; c != nil {
			c.vcpus -= vm.Config.VCPUs
			c.mem -= min64(c.mem, vm.Config.MemBytes)
		}
		if c := avail[src]; c != nil {
			c.vcpus += vm.Config.VCPUs
			c.mem += vm.Config.MemBytes
		}
	}

	g := sched.NewGraph()
	var spans []fleetSpan
	var abortErr error

	// newMigrationNode moves one VM src→dest on a private clock and a
	// private full-rate clone of the fabric link; stream admission is
	// the scheduler's LinkStreams capacity. Bookkeeping (database row,
	// evacuated-vs-replanned classification) happens in Commit.
	newMigrationNode := func(hp *fleetHostPlan, vmName, dest string) *sched.Node {
		nd := &sched.Node{
			Name:    "evacuate:" + vmName,
			Hosts:   []string{hp.name, dest},
			Streams: 1,
		}
		var (
			vmID    hv.VMID
			seed    uint64
			srcHyp  hv.Hypervisor
			destHyp hv.Hypervisor
			rep     *migration.Report
			known   bool
		)
		nd.Prepare = func(start time.Duration) {
			hp.markFirst(start)
			rec, ok := n.db[vmName]
			known = ok
			if !ok {
				return
			}
			vmID = rec.ID
			n.seed++
			seed = n.seed
			srcHyp = n.nodes[hp.name].Driver.Hypervisor()
			destHyp = n.nodes[dest].Driver.Hypervisor()
		}
		nd.Run = func(start time.Duration) (time.Duration, error) {
			if !known {
				return 0, hterr.VMLost(fmt.Errorf("nova: unknown VM %q", vmName))
			}
			c := simtime.NewClock()
			c.Advance(start)
			link := simnet.NewLink(c, n.fabric.Name(), n.fabric.ByteRate(), n.fabric.Latency())
			if n.fabric.Down() {
				link.SetDown(true)
			}
			link.SetFaults(n.faults.Derive(nd.ID))
			recv := migration.NewReceiver(c, destHyp, seed)
			var err error
			migration.Run(c, migration.Params{
				Link:   link,
				Source: srcHyp,
				Dest:   recv,
				VMID:   vmID,
				Retry:  n.retry,
			}, func(r *migration.Report, e error) { rep, err = r, e })
			c.Run()
			return c.Now() - start, err
		}
		nd.Commit = func(end time.Duration, err error) {
			delete(hp.pendingEvacs, vmName)
			switch {
			case err == nil:
				if rec, ok := n.db[vmName]; ok {
					rec.Node = dest
					rec.ID = rep.DestVM.ID
					rec.Kind = n.nodes[dest].Driver.HypervisorKind()
				}
				if n.quarantined[hp.name] {
					resp.ReplannedVMs = append(resp.ReplannedVMs, vmName)
				} else {
					hp.evacuated = append(hp.evacuated, vmName)
				}
				n.slo.AddVMDowntime(vmName, rep.Downtime)
				spans = append(spans, fleetSpan{
					name: "nova.live-migrate", start: base + nd.Start(), end: base + end,
					attrs: []obs.Attr{obs.A("vm", vmName), obs.A("from", hp.name), obs.A("to", dest)},
				})
			case errors.Is(err, sched.ErrDepFailed):
				// The destination never became ready (its transplant
				// failed) or the response aborted. A quarantined
				// source strands the VM; otherwise the host's
				// transplant is skipped next and replans the drain.
				if n.quarantined[hp.name] {
					resp.StrandedVMs = append(resp.StrandedVMs, vmName)
				}
			default:
				if hterr.Class(err) == hterr.ErrVMLost {
					// Lost mid-stream: the row must not place a VM no
					// host runs.
					delete(n.db, vmName)
				} else if n.quarantined[hp.name] {
					// A failed quarantine drain strands in place.
					resp.StrandedVMs = append(resp.StrandedVMs, vmName)
				}
			}
		}
		return g.Add(nd)
	}

	// quarantineScheduled marks a host failed mid-schedule and replans
	// its remaining VMs as drain migrations through the same scheduler
	// (VMs with still-pending evacuation nodes keep those).
	quarantineScheduled := func(hp *fleetHostPlan) {
		if n.quarantined[hp.name] {
			return
		}
		n.quarantined[hp.name] = true
		resp.QuarantinedNodes = append(resp.QuarantinedNodes, hp.name)
		n.obs.Metrics().Counter("nova.hosts_quarantined", "hosts").Add(1)
		for _, vm := range hp.node.Driver.VMs() {
			vmName := vm.Config.Name
			if hp.pendingEvacs[vmName] {
				continue
			}
			dest := pickDest(hp.name, vm)
			if dest == "" {
				resp.StrandedVMs = append(resp.StrandedVMs, vmName)
				continue
			}
			claimDest(hp.name, dest, vm)
			dn := newMigrationNode(hp, vmName, dest)
			hp.pendingEvacs[vmName] = true
			if dhp := plans[dest]; dhp != nil && dhp.tp != nil {
				g.Dep(dn, dhp.tp)
			}
		}
	}

	// newTransplantNode upgrades one host in place (or fresh-boots an
	// empty spare) on a private clock swapped into the host's engine.
	newTransplantNode := func(hp *fleetHostPlan) *sched.Node {
		nd := &sched.Node{
			Name:   "transplant:" + hp.name,
			Hosts:  []string{hp.name},
			Kexecs: 1,
		}
		drv := hp.node.Driver
		ld := drv.(*LibvirtDriver)
		nd.Prepare = func(start time.Duration) {
			hp.tpStart = start
			hp.markFirst(start)
			if fired, _ := n.faults.Arm(fault.SiteClusterHost); fired {
				hp.hostFault = true
			}
			// The engine runs concurrently: give it a derived fault
			// stream (arming order on the shared plan would depend on
			// scheduling) and detach the shared recorder.
			ld.engine.Fault = n.faults.Derive(nd.ID)
			ld.engine.Obs = nil
		}
		nd.Run = func(start time.Duration) (time.Duration, error) {
			if hp.hostFault {
				return 0, errFleetHostFault
			}
			c := simtime.NewClock()
			c.Advance(start)
			restore := ld.engine.SwapClock(c)
			defer restore()
			if len(drv.VMs()) > 0 {
				rep, err := drv.HostLiveUpgrade(hp.target, opts)
				if err != nil {
					return c.Now() - start, err
				}
				hp.report = rep
			} else if err := rebootEmptyHost(drv, hp.target); err != nil {
				return c.Now() - start, err
			}
			return c.Now() - start, nil
		}
		nd.Commit = func(end time.Duration, err error) {
			ld.engine.Fault = n.faults
			ld.engine.Obs = n.obs
			switch {
			case err == nil:
				if hp.report != nil {
					for _, res := range hp.report.VMs {
						if r, ok := n.db[res.Name]; ok {
							r.ID = res.NewID
							r.Kind = hp.target
						}
						n.slo.AddVMDowntime(res.Name, hp.report.Downtime)
					}
				}
				// The kexec commit closes this host's vulnerability
				// window.
				n.slo.Remediate(cveID, hp.name, base+end)
				resp.UpgradedNodes = append(resp.UpgradedNodes, hp.name)
				resp.Records = append(resp.Records, &UpgradeRecord{
					Node: hp.name, Target: hp.target,
					EvacuatedVMs: hp.evacuated, Report: hp.report,
					Elapsed: end - hp.first,
				})
				spans = append(spans, fleetSpan{
					name: "nova.host-live-upgrade", start: base + hp.tpStart, end: base + end,
					attrs: []obs.Attr{obs.A("node", hp.name), obs.A("target", hp.target), obs.A("evacuated", len(hp.evacuated))},
				})
			case errors.Is(err, sched.ErrDepFailed):
				// An evacuation failed upstream; quarantine and drain
				// unless the whole response is aborting.
				if abortErr == nil {
					quarantineScheduled(hp)
				}
			}
			// Real errors are handled by OnFail (quarantine or abort).
		}
		return g.Add(nd)
	}

	owners := make(map[*sched.Node]*fleetHostPlan)

	// Pass B1: transplant nodes for hosts with nothing to evacuate —
	// empty spares and all-compatible hosts. These are the schedule
	// roots that unlock evacuation capacity.
	for _, name := range order {
		hp := plans[name]
		if len(hp.incompat) == 0 {
			hp.tp = newTransplantNode(hp)
			owners[hp.tp] = hp
		}
	}

	// Pass B2: evacuation pipelines. A host whose incompatible VM has
	// no placement is quarantined at plan time (the legacy abort path)
	// and its VMs drain instead.
	for _, name := range order {
		hp := plans[name]
		if len(hp.incompat) == 0 {
			continue
		}
		var evacs []*sched.Node
		placed := true
		for _, vm := range hp.incompat {
			dest := pickDest(name, vm)
			if dest == "" {
				placed = false
				break
			}
			claimDest(name, dest, vm)
			ev := newMigrationNode(hp, vm.Config.Name, dest)
			owners[ev] = hp
			hp.pendingEvacs[vm.Config.Name] = true
			if dhp := plans[dest]; dhp != nil && dhp.tp != nil {
				g.Dep(ev, dhp.tp)
			}
			evacs = append(evacs, ev)
		}
		if !placed {
			// No capacity for this host's evacuations: quarantine it
			// up front; already-planned evacuations become drains.
			n.quarantined[name] = true
			resp.QuarantinedNodes = append(resp.QuarantinedNodes, name)
			n.obs.Metrics().Counter("nova.hosts_quarantined", "hosts").Add(1)
			for _, vm := range hp.node.Driver.VMs() {
				vmName := vm.Config.Name
				if hp.pendingEvacs[vmName] {
					continue
				}
				dest := pickDest(name, vm)
				if dest == "" {
					resp.StrandedVMs = append(resp.StrandedVMs, vmName)
					continue
				}
				claimDest(name, dest, vm)
				dn := newMigrationNode(hp, vmName, dest)
				owners[dn] = hp
				hp.pendingEvacs[vmName] = true
				if dhp := plans[dest]; dhp != nil && dhp.tp != nil {
					g.Dep(dn, dhp.tp)
				}
			}
			continue
		}
		hp.tp = newTransplantNode(hp)
		owners[hp.tp] = hp
		for _, ev := range evacs {
			g.Dep(hp.tp, ev)
		}
	}

	onFail := func(nd *sched.Node, err error) bool {
		hp := owners[nd]
		if hterr.Class(err) == hterr.ErrVMLost {
			if hp != nil && nd == hp.tp {
				n.reconcileLostHost(hp.name)
			}
			abortErr = err
			return true
		}
		if errors.Is(err, errFleetHostFault) {
			resp.Faults++
		}
		if hp != nil {
			quarantineScheduled(hp)
		}
		return false
	}

	schedule, err := sched.Execute(g, *n.fleetLimits, sched.Options{OnFail: onFail, Metrics: n.obs.Metrics()})
	if err != nil {
		return nil, err
	}
	n.clock.Advance(schedule.Makespan)

	// Emit the buffered spans under one root, sorted by start time so
	// siblings open in monotone order regardless of completion order.
	if n.obs != nil && len(spans) > 0 {
		root := n.obs.StartAt(nil, "nova.respond-cve", base,
			obs.A("cve", cveID), obs.A("target", resp.Target), obs.A("hosts", len(order)))
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
		for _, fs := range spans {
			sp := root.ChildAt(fs.name, fs.start, fs.attrs...)
			sp.EndAt(fs.end)
		}
		root.EndAt(base + schedule.Makespan)
	}

	resp.Elapsed = n.clock.Now() - base
	if abortErr != nil {
		resp.Outcome = report.OutcomeDegraded
		return resp, abortErr
	}
	if len(resp.UpgradedNodes) == 0 && len(resp.QuarantinedNodes) == 0 {
		return nil, fmt.Errorf("nova: no node runs a hypervisor affected by %s", cveID)
	}
	if len(resp.QuarantinedNodes) > 0 {
		resp.Outcome = report.OutcomeDegraded
	}
	return resp, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
