package orchestrator

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"hypertp/internal/core"
	"hypertp/internal/fault"
	"hypertp/internal/hterr"
	"hypertp/internal/hv"
	"hypertp/internal/par"
	"hypertp/internal/reactive"
	"hypertp/internal/report"
	"hypertp/internal/sched"
	"hypertp/internal/slo"
)

// reactiveCloud is newCloud plus the reactive control plane: a failure
// detector with a pinned seed and an SLO tracker for the outage ledger.
func reactiveCloud(t *testing.T, nodes int) (*cloud, *slo.Tracker) {
	t.Helper()
	c := newCloud(t, nodes, hv.KindXen)
	det := reactive.NewDetector(reactive.ProbeConfig{Seed: 20210426})
	c.nova.SetDetector(det)
	tracker := slo.NewTracker()
	c.nova.SetSLO(tracker)
	return c, tracker
}

func TestCrashAndRecoverHost(t *testing.T) {
	c, tracker := reactiveCloud(t, 2)
	for i := 0; i < 3; i++ {
		if _, err := c.nova.BootVM(vmCfg(fmt.Sprintf("web-%d", i), true)); err != nil {
			t.Fatal(err)
		}
	}
	rec0, _ := c.nova.Record("web-0")
	host := rec0.Node
	c.clock.Advance(time.Second)

	ev, err := c.nova.CrashHost(host, "injected panic")
	if err != nil {
		t.Fatal(err)
	}
	if ev.CrashedAt != time.Second || ev.DetectedAt <= ev.CrashedAt {
		t.Fatalf("event = %+v", ev)
	}
	if !c.nova.HostDowned(host) || len(c.nova.Downed()) != 1 {
		t.Fatal("host not in the downed ledger")
	}
	if _, err := c.nova.CrashHost(host, "again"); err == nil {
		t.Fatal("double crash accepted")
	}
	// The scheduler must not place new work on a downed host.
	placed, err := c.nova.BootVM(vmCfg("fresh", true))
	if err != nil {
		t.Fatal(err)
	}
	if placed == host {
		t.Fatal("new VM placed on a downed host")
	}

	up, err := c.nova.RecoverHost(host, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if up.Target != hv.KindKVM || up.Report == nil || !up.Report.Emergency {
		t.Fatalf("record = %+v", up)
	}
	if c.nova.HostDowned(host) {
		t.Fatal("host still downed after recovery")
	}
	// MTTR = detection latency + salvage/transplant time, measured from
	// the actual crash.
	if up.Elapsed != c.clock.Now()-ev.CrashedAt || up.Elapsed <= ev.Latency() {
		t.Fatalf("elapsed = %v (latency %v)", up.Elapsed, ev.Latency())
	}
	node, _ := c.nova.Node(host)
	if node.Driver.HypervisorKind() != hv.KindKVM {
		t.Fatalf("host runs %v after emergency", node.Driver.HypervisorKind())
	}
	for i := 0; i < 3; i++ {
		rec, ok := c.nova.Record(fmt.Sprintf("web-%d", i))
		if !ok || rec.Kind != hv.KindKVM {
			t.Fatalf("record = %+v", rec)
		}
		vm, ok := node.Driver.Hypervisor().LookupVM(rec.ID)
		if !ok {
			t.Fatalf("VM %s missing after recovery", rec.Name)
		}
		if err := vm.Guest.Verify(); err != nil {
			t.Fatal(err)
		}
	}
	a := tracker.Availability(c.clock.Now())
	if a.Hosts != 1 || a.Outages != 1 || a.Open != 0 || a.MTTRMax != up.Elapsed {
		t.Fatalf("availability = %+v, want one closed outage of %v", a, up.Elapsed)
	}
}

func TestHangIsFencedAndRecovered(t *testing.T) {
	c, tracker := reactiveCloud(t, 2)
	if _, err := c.nova.BootVM(vmCfg("app", true)); err != nil {
		t.Fatal(err)
	}
	rec, _ := c.nova.Record("app")
	ev, err := c.nova.HangHost(rec.Node, "watchdog wedge")
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Hung {
		t.Fatal("hang not marked hung")
	}
	if _, err := c.nova.RecoverHost(rec.Node, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if a := tracker.Availability(c.clock.Now()); a.Open != 0 {
		t.Fatalf("availability = %+v", a)
	}
}

func TestRecoverEmptyDownedHost(t *testing.T) {
	c, _ := reactiveCloud(t, 2)
	// b-node has no VMs: recovery is a fresh boot of the emergency
	// target, not a salvage.
	if _, err := c.nova.CrashHost(nodeName(1), "injected"); err != nil {
		t.Fatal(err)
	}
	up, err := c.nova.RecoverHost(nodeName(1), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if up.Report != nil || up.Target != hv.KindKVM {
		t.Fatalf("record = %+v, want fresh boot to kvm", up)
	}
	node, _ := c.nova.Node(nodeName(1))
	if node.Driver.HypervisorKind() != hv.KindKVM {
		t.Fatal("empty host not rebooted to the emergency target")
	}
}

func TestReactiveErrors(t *testing.T) {
	c, _ := reactiveCloud(t, 1)
	if _, err := c.nova.CrashHost("ghost", "x"); err == nil {
		t.Fatal("crash of unknown node accepted")
	}
	if _, err := c.nova.RecoverHost(nodeName(0), core.DefaultOptions()); err == nil {
		t.Fatal("recovery of a healthy host accepted")
	}
}

// A hypervisor fail-stop mid-transplant self-heals inside the driver:
// HostLiveUpgrade falls through to the emergency path and the upgrade
// still lands on the target, with the aborted attempt's faults counted.
func TestHostLiveUpgradeSelfHealsDoubleFault(t *testing.T) {
	c, _ := reactiveCloud(t, 2)
	for i := 0; i < 2; i++ {
		if _, err := c.nova.BootVM(vmCfg(fmt.Sprintf("db-%d", i), true)); err != nil {
			t.Fatal(err)
		}
	}
	rec, _ := c.nova.Record("db-0")
	c.nova.SetFaults(fault.NewPlan(11, 0).ForceAt(fault.SiteHVCrashDuringTP, 1))
	up, err := c.nova.HostLiveUpgrade(rec.Node, hv.KindKVM, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if up.Report == nil || !up.Report.Emergency {
		t.Fatalf("report = %+v, want the emergency fallthrough", up.Report)
	}
	if up.Report.Faults < 1 || up.Report.Attempts < 2 {
		t.Fatalf("faults=%d attempts=%d, want the aborted attempt folded in",
			up.Report.Faults, up.Report.Attempts)
	}
	if c.nova.HostDowned(rec.Node) {
		t.Fatal("self-healed host left in the downed ledger")
	}
	node, _ := c.nova.Node(rec.Node)
	if node.Driver.HypervisorKind() != hv.KindKVM {
		t.Fatal("double-faulted upgrade did not land on the target")
	}
	for _, vm := range node.Driver.VMs() {
		if err := vm.Guest.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

// Salvage exhaustion leaves the host frozen and downed; clearing the
// fault plan and retrying recovers it — nothing was lost.
func TestRecoverHostFrozenIsRetryable(t *testing.T) {
	c, tracker := reactiveCloud(t, 2)
	if _, err := c.nova.BootVM(vmCfg("app", true)); err != nil {
		t.Fatal(err)
	}
	rec, _ := c.nova.Record("app")
	if _, err := c.nova.CrashHost(rec.Node, "injected"); err != nil {
		t.Fatal(err)
	}
	c.nova.SetFaults(fault.NewPlan(7, 0).
		ForceAt(fault.SitePRAMBuild, 1).
		ForceAt(fault.SitePRAMBuild, 2).
		ForceAt(fault.SitePRAMBuild, 3))
	_, err := c.nova.RecoverHost(rec.Node, core.DefaultOptions())
	if hterr.Class(err) != hterr.ErrHypervisorCrashed {
		t.Fatalf("err = %v, want hypervisor-crashed class", err)
	}
	if !c.nova.HostDowned(rec.Node) {
		t.Fatal("frozen host dropped from the downed ledger")
	}
	if a := tracker.Availability(c.clock.Now()); a.Open != 1 {
		t.Fatalf("availability = %+v, want the outage still open", a)
	}
	c.nova.SetFaults(nil)
	if _, err := c.nova.RecoverHost(rec.Node, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if c.nova.HostDowned(rec.Node) {
		t.Fatal("host still downed after successful retry")
	}
}

// stormFleet crashes a mix of loaded and spare hosts at staggered times
// and returns the crashed names.
func stormFleet(tb testing.TB, c *cloud, hosts []int) []string {
	tb.Helper()
	det := reactive.NewDetector(reactive.ProbeConfig{Seed: 20210426})
	c.nova.SetDetector(det)
	var crashed []string
	for _, i := range hosts {
		name := fmt.Sprintf("host-%03d", i)
		c.clock.Advance(37 * time.Millisecond)
		if _, err := c.nova.CrashHost(name, "storm"); err != nil {
			tb.Fatal(err)
		}
		crashed = append(crashed, name)
	}
	return crashed
}

func TestCrashStormScheduledRecovery(t *testing.T) {
	c := newFleet(t, stockFleet())
	tracker := slo.NewTracker()
	c.nova.SetSLO(tracker)
	crashed := stormFleet(t, c, []int{0, 2, 5, 8, 9})
	limits := sched.Limits{MaxKexecs: 2}
	c.nova.SetFleetLimits(&limits)

	resp, err := c.nova.RecoverFleet(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != report.OutcomeCompleted {
		t.Fatalf("outcome = %s (frozen %v lost %v)", resp.Outcome, resp.FrozenNodes, resp.LostNodes)
	}
	if len(resp.RecoveredNodes) != len(crashed) {
		t.Fatalf("recovered %v, want %v", resp.RecoveredNodes, crashed)
	}
	if len(c.nova.Downed()) != 0 {
		t.Fatalf("downed after sweep: %v", c.nova.Downed())
	}
	if s := resp.Summary(); s.Kind != "crash-storm" || s.Attempts != len(crashed) {
		t.Fatalf("summary = %+v", s)
	}
	// Every crashed host now runs the emergency target with its guests
	// intact, and the database agrees.
	for _, name := range crashed {
		node, _ := c.nova.Node(name)
		if node.Driver.HypervisorKind() != hv.KindKVM {
			t.Fatalf("host %s runs %v after storm", name, node.Driver.HypervisorKind())
		}
		for _, vm := range node.Driver.VMs() {
			if err := vm.Guest.Verify(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, rec := range c.nova.Records() {
		node, _ := c.nova.Node(rec.Node)
		if _, ok := node.Driver.Hypervisor().LookupVM(rec.ID); !ok {
			t.Fatalf("database row %s points at a missing VM", rec.Name)
		}
	}
	// The outage ledger closed every interval and the MTTR budget holds.
	a := tracker.Availability(c.clock.Now())
	if a.Hosts != len(crashed) || a.Outages != len(crashed) || a.Open != 0 {
		t.Fatalf("availability = %+v", a)
	}
	tracker.SetMTTRBudget(slo.Target{Quantile: 1, Window: time.Hour})
	if !tracker.Pass(c.clock.Now()) {
		t.Fatal("MTTR budget violated by the storm recovery")
	}
	// An empty sweep is a no-op.
	again, err := c.nova.RecoverFleet(core.DefaultOptions())
	if err != nil || len(again.DownHosts) != 0 || again.Outcome != report.OutcomeCompleted {
		t.Fatalf("idle sweep = %+v, %v", again, err)
	}
}

// The storm recovery schedule is a pure function of (seed, probe
// config, fleet): byte-identical for any -workers value, serial or
// concurrent alike in its final placement.
func TestCrashStormDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run storm in -short mode")
	}
	run := func(workers int) []byte {
		old := par.Workers()
		par.SetWorkers(workers)
		defer par.SetWorkers(old)
		c := newFleet(t, stockFleet())
		stormFleet(t, c, []int{0, 1, 3, 6, 9})
		c.nova.SetFaults(fault.NewPlan(13, 0.02))
		limits := sched.Limits{MaxKexecs: 3}
		c.nova.SetFleetLimits(&limits)
		resp, err := c.nova.RecoverFleet(core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(struct {
			Resp      *StormResponse
			Placement []string
			Now       time.Duration
		}{resp, placement(c.nova), c.clock.Now()})
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	b1 := run(1)
	b8 := run(8)
	if string(b1) != string(b8) {
		t.Fatalf("storm recovery differs across workers:\n-workers 1: %s\n-workers 8: %s", b1, b8)
	}
	if again := run(8); string(again) != string(b8) {
		t.Fatal("identical wide runs differ")
	}
}

// BenchmarkCrashStorm is the 200-host fleet losing a quarter of its
// hosts at once and recovering them under a kexec cap — the reactive
// twin of BenchmarkFleetResponse.
func BenchmarkCrashStorm(b *testing.B) {
	var hosts []int
	for i := 0; i < bigFleet().hosts; i += 4 {
		hosts = append(hosts, i)
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := newFleet(b, bigFleet())
		crashed := stormFleet(b, c, hosts)
		limits := sched.Limits{MaxKexecs: 8}
		c.nova.SetFleetLimits(&limits)
		b.StartTimer()
		resp, err := c.nova.RecoverFleet(core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.RecoveredNodes) != len(crashed) {
			b.Fatalf("recovered %d hosts, want %d", len(resp.RecoveredNodes), len(crashed))
		}
	}
}
