// Reactive recovery: the crash-triggered half of the orchestrator. Nova
// subscribes to the failure detector, keeps a ledger of downed hosts,
// and turns each detection into an emergency transplant — one host at a
// time through RecoverHost, or fleet-wide through RecoverFleet, which
// schedules a crash storm's recoveries on the same dependency-aware
// scheduler as RespondToCVE so kexec limits hold while many hosts
// recover at once.
package orchestrator

import (
	"fmt"
	"sort"
	"time"

	"hypertp/internal/core"
	"hypertp/internal/hterr"
	"hypertp/internal/hv"
	"hypertp/internal/obs"
	"hypertp/internal/reactive"
	"hypertp/internal/report"
	"hypertp/internal/sched"
	"hypertp/internal/simtime"
)

// CrashHost fail-stops the host's hypervisor: every vCPU freezes, guest
// memory and VM_i State stay intact in place. Reports an error when the
// hypervisor does not model crashes or has already failed.
func (d *LibvirtDriver) CrashHost(reason string) error {
	c, ok := d.hyp.(hv.Crashable)
	if !ok {
		return hterr.Incompatible(fmt.Errorf("orchestrator: %v does not model crashes", d.hyp.Kind()))
	}
	if !c.Crash(reason) {
		return fmt.Errorf("orchestrator: hypervisor already failed (%s)", c.CrashReason())
	}
	return nil
}

// HangHost wedges the host's control plane without fail-stopping it:
// vCPUs freeze, but the failure is only observable as missed heartbeats.
// Recovery fences the hypervisor before salvaging.
func (d *LibvirtDriver) HangHost(reason string) error {
	c, ok := d.hyp.(hv.Crashable)
	if !ok {
		return hterr.Incompatible(fmt.Errorf("orchestrator: %v does not model hangs", d.hyp.Kind()))
	}
	if !c.Hang(reason) {
		return fmt.Errorf("orchestrator: hypervisor already failed (%s)", c.CrashReason())
	}
	return nil
}

// EmergencyRecover salvages the frozen VMs from the crashed (or hung)
// hypervisor and boots the target in their place — the driver-level
// reactive-transplant operation, the crash-path sibling of
// HostLiveUpgrade.
func (d *LibvirtDriver) EmergencyRecover(target hv.Kind, opts core.Options) (*core.InPlaceReport, error) {
	newHyp, rep, err := d.engine.Emergency(d.hyp, target, opts)
	if err != nil {
		return nil, err
	}
	d.hyp = newHyp
	return rep, nil
}

// hostCrasher is the driver capability the reactive path needs; only
// drivers that model crashes (LibvirtDriver) implement it.
type hostCrasher interface {
	CrashHost(reason string) error
	HangHost(reason string) error
	EmergencyRecover(target hv.Kind, opts core.Options) (*core.InPlaceReport, error)
}

// EmergencyTarget picks the hypervisor an emergency transplant boots in
// place of a crashed one: the other member of the paper's transplant
// pair. The crashed binary is exactly what just failed, so rebooting
// into it is never the answer.
func EmergencyTarget(crashed hv.Kind) hv.Kind {
	if crashed == hv.KindXen {
		return hv.KindKVM
	}
	return hv.KindXen
}

// SetDetector attaches a failure detector: Nova subscribes to its
// events, so every observed failure — from CrashHost, chaos ops, or an
// external monitor — lands in the downed-host ledger and opens an
// unplanned-outage interval on the SLO timeline at the actual crash
// time (the undetected window counts against availability). A nil
// detector detaches; CrashHost then records outages directly with zero
// detection latency.
func (n *Nova) SetDetector(d *reactive.Detector) {
	n.detector = d
	if d != nil {
		d.Subscribe(n.noteCrash)
	}
}

// Detector returns the attached failure detector (nil when detached).
func (n *Nova) Detector() *reactive.Detector { return n.detector }

// noteCrash is the detector subscription: first failure per host wins,
// and hosts the manager does not run are ignored (the detector may
// watch a wider fleet).
func (n *Nova) noteCrash(ev reactive.Event) {
	if _, ok := n.nodes[ev.Host]; !ok {
		return
	}
	if _, down := n.downed[ev.Host]; down {
		return
	}
	n.downed[ev.Host] = ev
	n.slo.HostDown(ev.Host, ev.CrashedAt, ev.Reason)
	n.obs.Metrics().Counter("nova.hosts_crashed", "hosts").Add(1)
}

// CrashHost injects a fail-stop on a managed host and routes it through
// the detector. Returns the detection event (DetectedAt is when the
// control plane may begin recovery).
func (n *Nova) CrashHost(name, reason string) (reactive.Event, error) {
	return n.failHost(name, reason, false)
}

// HangHost wedges a managed host's control plane; recovery will fence
// it before salvaging.
func (n *Nova) HangHost(name, reason string) (reactive.Event, error) {
	return n.failHost(name, reason, true)
}

func (n *Nova) failHost(name, reason string, hang bool) (reactive.Event, error) {
	node, ok := n.nodes[name]
	if !ok {
		return reactive.Event{}, fmt.Errorf("nova: unknown node %q", name)
	}
	hc, ok := node.Driver.(hostCrasher)
	if !ok {
		return reactive.Event{}, hterr.Incompatible(fmt.Errorf("nova: driver %T cannot model crashes", node.Driver))
	}
	if _, down := n.downed[name]; down {
		return reactive.Event{}, fmt.Errorf("nova: node %q is already down", name)
	}
	var err error
	if hang {
		err = hc.HangHost(reason)
	} else {
		err = hc.CrashHost(reason)
	}
	if err != nil {
		return reactive.Event{}, err
	}
	now := n.clock.Now()
	if n.detector != nil {
		return n.detector.Observe(name, now, reason, hang), nil
	}
	ev := reactive.Event{Host: name, Reason: reason, Hung: hang, CrashedAt: now, DetectedAt: now}
	n.noteCrash(ev)
	return ev, nil
}

// Downed returns the crashed-but-unrecovered hosts in sorted order.
func (n *Nova) Downed() []string {
	out := make([]string, 0, len(n.downed))
	for name := range n.downed {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// HostDowned reports whether the node is crashed and awaiting recovery.
func (n *Nova) HostDowned(name string) bool {
	_, ok := n.downed[name]
	return ok
}

// RecoverHost runs the emergency transplant for one downed host: wait
// out the heartbeat monitor's detection latency, salvage the frozen VMs
// from the crashed hypervisor's in-memory image, and boot the emergency
// target in their place. On success the outage closes at the last VM's
// resume time and the record's Elapsed is the host's MTTR — crash to
// resume, detection window included. A host whose salvage exhausts its
// retries stays downed (the frozen state is intact; RecoverHost may be
// retried), while a post-handover loss reconciles the database and
// quarantines the host.
func (n *Nova) RecoverHost(name string, opts core.Options) (*UpgradeRecord, error) {
	ev, down := n.downed[name]
	if !down {
		return nil, fmt.Errorf("nova: node %q is not down", name)
	}
	node := n.nodes[name]
	hc, ok := node.Driver.(hostCrasher)
	if !ok {
		return nil, hterr.Incompatible(fmt.Errorf("nova: driver %T cannot recover", node.Driver))
	}
	// Recovery cannot start before the monitor declared the host dead.
	if ev.DetectedAt > n.clock.Now() {
		n.clock.Advance(ev.DetectedAt - n.clock.Now())
	}
	target := EmergencyTarget(node.Driver.HypervisorKind())
	sp := n.obs.Start("nova.emergency-recover",
		obs.A("node", name), obs.A("target", target), obs.A("reason", ev.Reason))
	defer sp.End()

	var rep *core.InPlaceReport
	if len(node.Driver.VMs()) > 0 {
		var err error
		rep, err = hc.EmergencyRecover(target, opts)
		if err != nil {
			if hterr.Class(err) == hterr.ErrVMLost {
				// Died past the point of no return: the VMs are gone, the
				// database must not keep placing them, and the outage
				// stays open (there is nothing left to bring up).
				delete(n.downed, name)
				n.reconcileLostHost(name)
			}
			return nil, err
		}
		for _, res := range rep.VMs {
			if r, ok := n.db[res.Name]; ok {
				r.ID = res.NewID
				r.Kind = target
			}
			n.slo.AddVMDowntime(res.Name, rep.Downtime)
		}
	} else {
		// Nothing to salvage: discard the crashed image and fresh-boot
		// the target.
		if err := rebootEmptyHost(node.Driver, target); err != nil {
			return nil, err
		}
	}
	delete(n.downed, name)
	n.slo.HostUp(name, n.clock.Now())
	n.obs.Metrics().Counter("nova.emergency_recoveries", "hosts").Add(1)
	return &UpgradeRecord{
		Node: name, Target: target, Report: rep,
		Elapsed: n.clock.Now() - ev.CrashedAt,
	}, nil
}

// StormResponse summarizes a fleet-wide crash-storm recovery sweep.
type StormResponse struct {
	// DownHosts is every host the sweep attempted, sorted by name.
	DownHosts []string
	// RecoveredNodes completed an emergency transplant (or a fresh boot
	// for empty hosts). FrozenNodes exhausted salvage retries and stay
	// downed with their VM state intact — a later sweep may retry them.
	// LostNodes died past the point of no return and were reconciled.
	RecoveredNodes []string
	FrozenNodes    []string
	LostNodes      []string
	Records        []*UpgradeRecord
	// Faults counts the injected faults absorbed across all recoveries.
	Faults  int
	Outcome report.Outcome
	Elapsed time.Duration
}

// Summary implements report.Report.
func (r *StormResponse) Summary() report.Summary {
	s := report.Summary{
		Kind:           "crash-storm",
		Outcome:        r.Outcome,
		Attempts:       len(r.DownHosts),
		Faults:         r.Faults,
		VirtualElapsed: r.Elapsed,
	}
	for _, rec := range r.Records {
		if rec.Report != nil {
			s.Downtime += rec.Report.Downtime
		}
	}
	return s
}

// RecoverFleet sweeps every downed host through emergency recovery —
// the crash-storm response. With fleet limits configured the sweep runs
// on the dependency-aware scheduler: one host-exclusive node per downed
// host, each consuming a kexec slot, each on a private clock that first
// waits out that host's detection latency, with derived fault plans so
// results are byte-identical for any -workers value. Without limits it
// recovers serially in name order. Hosts that stay frozen or are lost
// degrade the outcome but never abort the sweep: in a storm, every
// other host's recovery matters more than any one host's failure.
func (n *Nova) RecoverFleet(opts core.Options) (*StormResponse, error) {
	resp := &StormResponse{DownHosts: n.Downed(), Outcome: report.OutcomeCompleted}
	if len(resp.DownHosts) == 0 {
		return resp, nil
	}
	base := n.clock.Now()

	if n.fleetLimits == nil {
		for _, name := range resp.DownHosts {
			rec, err := n.RecoverHost(name, opts)
			switch {
			case err == nil:
				resp.RecoveredNodes = append(resp.RecoveredNodes, name)
				resp.Records = append(resp.Records, rec)
				if rec.Report != nil {
					resp.Faults += rec.Report.Faults
				}
			case hterr.Class(err) == hterr.ErrVMLost:
				resp.LostNodes = append(resp.LostNodes, name)
			case hterr.Class(err) == hterr.ErrHypervisorCrashed:
				resp.FrozenNodes = append(resp.FrozenNodes, name)
			default:
				return resp, err
			}
		}
		return n.finishStorm(resp, base, nil)
	}

	for _, name := range resp.DownHosts {
		if _, ok := n.nodes[name].Driver.(*LibvirtDriver); !ok {
			return nil, fmt.Errorf("nova: fleet scheduler requires libvirt drivers; node %q has %T", name, n.nodes[name].Driver)
		}
	}

	type stormPlan struct {
		name   string
		ev     reactive.Event
		target hv.Kind
		rep    *core.InPlaceReport
		start  time.Duration
	}

	g := sched.NewGraph()
	var spans []fleetSpan
	for _, name := range resp.DownHosts {
		node := n.nodes[name]
		ld := node.Driver.(*LibvirtDriver)
		hp := &stormPlan{name: name, ev: n.downed[name], target: EmergencyTarget(node.Driver.HypervisorKind())}
		nd := &sched.Node{Name: "emergency:" + name, Hosts: []string{name}, Kexecs: 1}
		nd.Prepare = func(start time.Duration) {
			hp.start = start
			// The engine runs concurrently: derived fault stream, shared
			// recorder detached (spans are buffered and replayed sorted).
			ld.engine.Fault = n.faults.Derive(nd.ID)
			ld.engine.Obs = nil
		}
		nd.Run = func(start time.Duration) (time.Duration, error) {
			c := simtime.NewClock()
			c.Advance(start)
			// A recovery slot may open before the monitor has declared
			// this host dead; the node then idles until detection.
			if det := hp.ev.DetectedAt - base; det > start {
				c.Advance(det - start)
			}
			restore := ld.engine.SwapClock(c)
			defer restore()
			if len(ld.VMs()) > 0 {
				rep, err := ld.EmergencyRecover(hp.target, opts)
				if err != nil {
					return c.Now() - start, err
				}
				hp.rep = rep
			} else if err := rebootEmptyHost(ld, hp.target); err != nil {
				return c.Now() - start, err
			}
			return c.Now() - start, nil
		}
		nd.Commit = func(end time.Duration, err error) {
			ld.engine.Fault = n.faults
			ld.engine.Obs = n.obs
			switch {
			case err == nil:
				if hp.rep != nil {
					for _, res := range hp.rep.VMs {
						if r, ok := n.db[res.Name]; ok {
							r.ID = res.NewID
							r.Kind = hp.target
						}
						n.slo.AddVMDowntime(res.Name, hp.rep.Downtime)
					}
					resp.Faults += hp.rep.Faults
				}
				delete(n.downed, hp.name)
				n.slo.HostUp(hp.name, base+end)
				n.obs.Metrics().Counter("nova.emergency_recoveries", "hosts").Add(1)
				resp.RecoveredNodes = append(resp.RecoveredNodes, hp.name)
				resp.Records = append(resp.Records, &UpgradeRecord{
					Node: hp.name, Target: hp.target, Report: hp.rep,
					Elapsed: base + end - hp.ev.CrashedAt,
				})
				spans = append(spans, fleetSpan{
					name: "nova.emergency-recover", start: base + hp.start, end: base + end,
					attrs: []obs.Attr{obs.A("node", hp.name), obs.A("target", hp.target)},
				})
			case hterr.Class(err) == hterr.ErrVMLost:
				resp.LostNodes = append(resp.LostNodes, hp.name)
				delete(n.downed, hp.name)
				n.reconcileLostHost(hp.name)
			case hterr.Class(err) == hterr.ErrHypervisorCrashed:
				resp.FrozenNodes = append(resp.FrozenNodes, hp.name)
			}
		}
		g.Add(nd)
	}

	schedule, err := sched.Execute(g, *n.fleetLimits, sched.Options{Metrics: n.obs.Metrics()})
	if err != nil {
		return nil, err
	}
	n.clock.Advance(schedule.Makespan)
	return n.finishStorm(resp, base, spans)
}

// finishStorm closes out a storm sweep: emit the buffered spans under
// one root (sorted by start so siblings open in monotone order), stamp
// the elapsed time, and grade the outcome.
func (n *Nova) finishStorm(resp *StormResponse, base time.Duration, spans []fleetSpan) (*StormResponse, error) {
	if n.obs != nil && len(spans) > 0 {
		root := n.obs.StartAt(nil, "nova.crash-storm", base,
			obs.A("hosts", len(resp.DownHosts)), obs.A("recovered", len(resp.RecoveredNodes)))
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
		for _, fs := range spans {
			sp := root.ChildAt(fs.name, fs.start, fs.attrs...)
			sp.EndAt(fs.end)
		}
		root.EndAt(n.clock.Now())
	}
	resp.Elapsed = n.clock.Now() - base
	if len(resp.FrozenNodes) > 0 || len(resp.LostNodes) > 0 {
		resp.Outcome = report.OutcomeDegraded
	}
	return resp, nil
}
