// Package hterr is the error taxonomy of the transplant stack. Every
// failure a transplant operation can surface is classified against a
// small set of sentinel errors so that callers — up to and including the
// public hypertp API — can route on errors.Is instead of string
// matching:
//
//	ErrAborted            the operation was cancelled and fully rolled
//	                      back; the VM(s) still run where they started
//	ErrRetryable          transient; the same call may succeed if retried
//	ErrVMLost             recovery failed and a VM is unreachable — the
//	                      one outcome the paper's design rules out and the
//	                      recovery matrix test forbids
//	ErrIncompatibleTarget the requested target cannot host the workload
//	                      (same-kind transplant, unknown kind, pinned
//	                      pass-through device, ...)
//	ErrInjected           the proximate cause was a deterministic fault
//	                      injection (internal/fault), composable with any
//	                      of the classes above
//	ErrInvariantViolated  a global invariant the correctness argument
//	                      rests on (frame ownership, guest integrity,
//	                      fleet bookkeeping, span structure) was broken
//	ErrWatchdogExpired    an operation failed to complete or roll back
//	                      within its virtual-time budget — a livelock
//	                      turned into a failure instead of a silent hang
//	ErrHypervisorCrashed  the hypervisor fail-stopped underneath its
//	                      guests; their state survives in place and the
//	                      reactive recovery path can salvage it
//
// Classification wraps rather than replaces: Abort(Retry(err)) satisfies
// errors.Is for ErrAborted, ErrRetryable, and everything err itself
// wraps, because the classified error unwraps to both branches
// (Go 1.20 multi-error unwrapping).
package hterr

import (
	"errors"
	"fmt"
)

// The sentinel classes. They carry no state; identity is the contract.
var (
	// ErrAborted marks an operation that was cancelled and rolled back
	// with all VM state intact on the source.
	ErrAborted = errors.New("transplant aborted")
	// ErrRetryable marks a transient failure; retrying the operation is
	// expected to succeed.
	ErrRetryable = errors.New("retryable failure")
	// ErrVMLost marks an unrecoverable failure that left a VM
	// unreachable.
	ErrVMLost = errors.New("vm lost")
	// ErrIncompatibleTarget marks a transplant target that cannot host
	// the workload.
	ErrIncompatibleTarget = errors.New("incompatible transplant target")
	// ErrInjected marks a deliberately injected fault.
	ErrInjected = errors.New("injected fault")
	// ErrInvariantViolated marks a broken global invariant detected by
	// an auditor (internal/chaos, hw.AuditOwners).
	ErrInvariantViolated = errors.New("invariant violated")
	// ErrWatchdogExpired marks an operation that blew its virtual-time
	// or attempt budget: a retry loop or transplant that would otherwise
	// spin forever.
	ErrWatchdogExpired = errors.New("watchdog expired")
	// ErrHypervisorCrashed marks a fail-stopped hypervisor: the VMM is
	// gone but its guests' memory and VM_i State survive in place, so the
	// reactive path can still salvage them via an emergency transplant.
	// An operation returning this class either observed the crash (and
	// the detector will trigger recovery) or exhausted recovery attempts
	// with the host still frozen — frozen, not lost: the guests are in
	// stasis, distinct from ErrVMLost.
	ErrHypervisorCrashed = errors.New("hypervisor crashed")
)

// classified attaches one sentinel class to an underlying cause. Both
// arms are visible to errors.Is/As via multi-error Unwrap.
type classified struct {
	class error
	err   error
}

func (c *classified) Error() string { return fmt.Sprintf("%v: %v", c.class, c.err) }

func (c *classified) Unwrap() []error { return []error{c.class, c.err} }

// Classify wraps err with class. A nil err returns nil; wrapping with a
// class err already carries is a no-op.
func Classify(class, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, class) {
		return err
	}
	return &classified{class: class, err: err}
}

// Abort marks err as a clean, fully-rolled-back cancellation.
func Abort(err error) error { return Classify(ErrAborted, err) }

// Retryable marks err as transient.
func Retryable(err error) error { return Classify(ErrRetryable, err) }

// VMLost marks err as an unrecoverable VM loss.
func VMLost(err error) error { return Classify(ErrVMLost, err) }

// Incompatible marks err as a target-compatibility failure.
func Incompatible(err error) error { return Classify(ErrIncompatibleTarget, err) }

// Injected marks err as caused by deterministic fault injection.
func Injected(err error) error { return Classify(ErrInjected, err) }

// InvariantViolated marks err as a broken global invariant.
func InvariantViolated(err error) error { return Classify(ErrInvariantViolated, err) }

// WatchdogExpired marks err as a blown virtual-time or attempt budget.
func WatchdogExpired(err error) error { return Classify(ErrWatchdogExpired, err) }

// HypervisorCrashed marks err as caused by a fail-stopped hypervisor.
func HypervisorCrashed(err error) error { return Classify(ErrHypervisorCrashed, err) }

// Class reports the highest-priority sentinel err carries, or nil. The
// priority order puts the terminal outcome first: a lost VM dominates
// everything, a broken invariant or blown watchdog dominates the
// recoverable classes, a crashed hypervisor dominates the planned-path
// outcomes (its guests are frozen, not merely inconvenienced), and a
// clean abort dominates retryability.
func Class(err error) error {
	for _, class := range []error{ErrVMLost, ErrInvariantViolated, ErrWatchdogExpired,
		ErrHypervisorCrashed, ErrAborted, ErrRetryable, ErrIncompatibleTarget, ErrInjected} {
		if errors.Is(err, class) {
			return class
		}
	}
	return nil
}

// Label renders a class sentinel (as returned by Class) as a short
// stable token for command-line exit messages; unclassified errors
// label as "unclassified".
func Label(class error) string {
	switch class {
	case ErrVMLost:
		return "vm-lost"
	case ErrInvariantViolated:
		return "invariant-violated"
	case ErrWatchdogExpired:
		return "watchdog-expired"
	case ErrHypervisorCrashed:
		return "crash"
	case ErrAborted:
		return "aborted"
	case ErrRetryable:
		return "retryable"
	case ErrIncompatibleTarget:
		return "incompatible-target"
	case ErrInjected:
		return "injected"
	default:
		return "unclassified"
	}
}

// IsRetryable reports whether err is safe to retry: explicitly marked
// retryable and not a terminal loss.
func IsRetryable(err error) bool {
	return errors.Is(err, ErrRetryable) && !errors.Is(err, ErrVMLost)
}
