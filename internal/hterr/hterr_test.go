package hterr

import (
	"errors"
	"fmt"
	"testing"
)

func TestClassifyNilAndIdempotent(t *testing.T) {
	if Abort(nil) != nil {
		t.Fatal("classifying nil should stay nil")
	}
	base := errors.New("boom")
	once := Abort(base)
	twice := Abort(once)
	if twice != once {
		t.Fatal("re-classifying with the same class should be a no-op")
	}
}

func TestMultiClassUnwrap(t *testing.T) {
	base := fmt.Errorf("round 3: %w", errors.New("link severed"))
	err := Abort(Retryable(Injected(base)))
	for _, class := range []error{ErrAborted, ErrRetryable, ErrInjected} {
		if !errors.Is(err, class) {
			t.Fatalf("err does not carry %v", class)
		}
	}
	if errors.Is(err, ErrVMLost) || errors.Is(err, ErrIncompatibleTarget) {
		t.Fatal("err carries classes it was never given")
	}
}

func TestClassPriority(t *testing.T) {
	if got := Class(VMLost(Retryable(errors.New("x")))); got != ErrVMLost {
		t.Fatalf("Class = %v, want ErrVMLost", got)
	}
	if got := Class(Abort(Injected(errors.New("x")))); got != ErrAborted {
		t.Fatalf("Class = %v, want ErrAborted", got)
	}
	if got := Class(errors.New("plain")); got != nil {
		t.Fatalf("Class = %v, want nil", got)
	}
}

func TestHypervisorCrashedTaxonomy(t *testing.T) {
	err := HypervisorCrashed(Retryable(errors.New("heartbeat lost")))
	if !errors.Is(err, ErrHypervisorCrashed) || !errors.Is(err, ErrRetryable) {
		t.Fatal("crash classification dropped a class")
	}
	if got := Class(err); got != ErrHypervisorCrashed {
		t.Fatalf("Class = %v, want ErrHypervisorCrashed (crash outranks retryable)", got)
	}
	if got := Class(VMLost(HypervisorCrashed(errors.New("x")))); got != ErrVMLost {
		t.Fatalf("Class = %v, want ErrVMLost (loss outranks crash)", got)
	}
	if got := Class(InvariantViolated(HypervisorCrashed(errors.New("x")))); got != ErrInvariantViolated {
		t.Fatalf("Class = %v, want ErrInvariantViolated (invariant outranks crash)", got)
	}
	if got := Class(HypervisorCrashed(Abort(errors.New("x")))); got != ErrHypervisorCrashed {
		t.Fatalf("Class = %v, want ErrHypervisorCrashed (crash outranks abort)", got)
	}
	if Label(ErrHypervisorCrashed) != "crash" {
		t.Fatalf("Label = %q, want crash", Label(ErrHypervisorCrashed))
	}
}

func TestIsRetryable(t *testing.T) {
	if !IsRetryable(Retryable(errors.New("x"))) {
		t.Fatal("retryable error not retryable")
	}
	if IsRetryable(VMLost(Retryable(errors.New("x")))) {
		t.Fatal("lost VM must never be retryable")
	}
	if IsRetryable(errors.New("plain")) {
		t.Fatal("unclassified error treated as retryable")
	}
}
