// VENOM escape: the hardest case for hypervisor transplant. CVE-2015-3456
// (VENOM, the QEMU floppy-controller overflow) was the studied period's
// only *common* critical vulnerability — it hit Xen and KVM at once,
// because both embed QEMU. With a two-member pool the decision policy
// must refuse; with a microhypervisor in the repertoire (no QEMU, tiny
// TCB) there is an escape hatch, and the fleet can ride out the
// vulnerability window there before returning.
//
//	go run ./examples/venom-escape
package main

import (
	"fmt"
	"log"

	"hypertp"
)

func main() {
	db := hypertp.LoadVulnDB()
	const venom = "CVE-2015-3456"

	// The policy view.
	if _, err := db.SelectTarget("xen", []string{venom}, []string{"xen", "kvm"}); err != nil {
		fmt.Println("pool {xen, kvm}:      ", err)
	}
	target, err := db.SelectTarget("xen", []string{venom}, hypertp.DefaultPool)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pool {xen, kvm, nova}: escape to %q\n\n", target)

	// Execute it: a Xen host with running guests.
	sim := hypertp.NewSimulation()
	host, err := sim.NewHost(hypertp.M1(), hypertp.KindXen)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		vm, err := host.CreateVM(hypertp.VMConfig{
			Name: fmt.Sprintf("tenant-%d", i), VCPUs: 1, MemBytes: 1 << 30,
			HugePages: true, Seed: uint64(i),
		})
		if err != nil {
			log.Fatal(err)
		}
		vm.Guest.WriteWorkingSet(0, 256)
	}

	// Day 0: escape to the microhypervisor.
	kind, err := host.SelectTransplantTarget(db, venom)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := host.TransplantWith(kind, hypertp.Default())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 0:  %s → %s in %v downtime (microhypervisor boots in %v)\n",
		rep.Source, rep.Target, rep.Downtime, rep.Reboot)
	for _, vm := range host.VMs() {
		if err := vm.Guest.Verify(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("        all guests verified on %s\n", host.HypervisorName())

	// Weeks later: QEMU is patched everywhere; come home.
	rep, err = host.TransplantWith(hypertp.KindXen, hypertp.Default())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 28: %s → %s in %v downtime (two-kernel Xen boot dominates)\n",
		rep.Source, rep.Target, rep.Downtime)
	for _, vm := range host.VMs() {
		if err := vm.Guest.Verify(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("        all guests verified back on %s\n", host.HypervisorName())
	fmt.Println("\nthe vulnerability window was spent on a hypervisor the flaw cannot reach")
}
