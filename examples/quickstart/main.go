// Quickstart: boot a Xen host, run a VM with real data in guest memory,
// transplant the host to KVM in place, and verify nothing was lost.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hypertp"
)

func main() {
	sim := hypertp.NewSimulation()

	// A machine like the paper's M1 testbed, running Xen.
	host, err := sim.NewHost(hypertp.M1(), hypertp.KindXen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted %s\n", host.HypervisorName())

	// One small VM, like the paper's 1 vCPU / 1 GB reference guest.
	vm, err := host.CreateVM(hypertp.VMConfig{
		Name: "web-frontend", VCPUs: 1, MemBytes: 1 << 30,
		HugePages: true, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The guest writes real bytes into its memory.
	if err := vm.Guest.WriteWorkingSet(0, 512); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VM %q running, %d bytes of guest data written\n",
		vm.Config.Name, vm.Guest.WrittenBytes())

	// A critical Xen-only CVE drops. Ask the policy where to go.
	db := hypertp.LoadVulnDB()
	target, err := host.SelectTransplantTarget(db, "CVE-2016-6258")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CVE-2016-6258 is critical on Xen; policy says transplant to %v\n", target)

	// Transplant the whole host in place (InPlaceTP, Fig. 3).
	report, err := host.TransplantWith(target, hypertp.Default())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntransplanted %s → %s\n", report.Source, report.Target)
	fmt.Printf("  PRAM (pre-pause): %v\n", report.PRAM)
	fmt.Printf("  translation:      %v\n", report.Translation)
	fmt.Printf("  micro-reboot:     %v\n", report.Reboot)
	fmt.Printf("  restoration:      %v\n", report.Restoration)
	fmt.Printf("  downtime:         %v   (paper: ~1.7s on M1)\n", report.Downtime)

	// The guest never noticed: every byte is still there.
	for _, vm := range host.VMs() {
		if err := vm.Guest.Verify(); err != nil {
			log.Fatalf("guest state lost: %v", err)
		}
		fmt.Printf("VM %q verified on %s: all %d bytes intact\n",
			vm.Config.Name, host.HypervisorName(), vm.Guest.WrittenBytes())
	}
}
