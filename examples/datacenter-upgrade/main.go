// Datacenter upgrade: the §5.4 scenario — a 10-host cluster running 100
// VMs must leave its vulnerable hypervisor. The BtrPlace-style planner
// rolls the upgrade host group by host group, and the fraction of
// InPlaceTP-compatible VMs decides how much of the work becomes
// seconds-scale in-place transplants instead of minutes of migration.
//
//	go run ./examples/datacenter-upgrade
package main

import (
	"fmt"
	"log"
	"time"

	"hypertp/internal/cluster"
)

func main() {
	model := cluster.DefaultExecutionModel()

	fmt.Println("rolling upgrade of 10 hosts x 10 VMs (1 vCPU / 4 GB each)")
	fmt.Println("workload mix: 30% streaming, 30% cpu+mem, 40% idle")
	fmt.Println()

	var baseline time.Duration
	for _, pct := range []int{0, 20, 40, 60, 80} {
		c, err := cluster.New(cluster.Config{
			Hosts: 10, VMsPerHost: 10, StreamFrac: 0.3, CPUFrac: 0.3,
		})
		if err != nil {
			log.Fatal(err)
		}
		c.SetInPlaceCompatibleFraction(float64(pct)/100, 42)

		plan, err := c.PlanUpgrade(1)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			log.Fatal(err)
		}
		res := plan.Execute(model)
		if pct == 0 {
			baseline = res.TotalTime
		}
		gain := (1 - float64(res.TotalTime)/float64(baseline)) * 100
		fmt.Printf("%3d%% InPlaceTP-compatible: %3d migrations, total %8v (gain %3.0f%%)\n",
			pct, res.Migrations, res.TotalTime.Round(time.Second), gain)

		// Show the worst-travelled VM at the all-migration level.
		if pct == 0 {
			worst, hops := 0, 0
			for id := 0; id < c.VMCount(); id++ {
				vm, _ := c.VM(id)
				if vm.Migrations > hops {
					worst, hops = id, vm.Migrations
				}
			}
			vm, _ := c.VM(worst)
			fmt.Printf("      (cascade: %s migrated %d times before settling)\n", vm.Name, hops)
		}
	}

	fmt.Println()
	fmt.Println("paper's Fig. 13: 154 → 25 migrations and ~80% less upgrade time at 80% compatibility")
}
