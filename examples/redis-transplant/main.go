// Redis under transplant: reproduces the Fig. 11 scenario — a Redis
// server in a 2 vCPU / 8 GB VM is transplanted from Xen to KVM mid-run,
// once with InPlaceTP (a ~9 s service gap, then +37% throughput on KVM)
// and once with MigrationTP (a long degraded pre-copy window, negligible
// downtime).
//
//	go run ./examples/redis-transplant
package main

import (
	"fmt"
	"log"
	"time"

	"hypertp"
	"hypertp/internal/metrics"
	"hypertp/internal/workload"
)

func main() {
	// First measure the real transplant timings for this VM shape.
	sim := hypertp.NewSimulation()
	host, err := sim.NewHost(hypertp.M1(), hypertp.KindXen)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := host.CreateVM(hypertp.VMConfig{
		Name: "redis", VCPUs: 2, MemBytes: 8 << 30, HugePages: true, Seed: 7,
	}); err != nil {
		log.Fatal(err)
	}
	rep, err := host.TransplantWith(hypertp.KindKVM, hypertp.Default())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("InPlaceTP of the 2 vCPU / 8 GB Redis VM: downtime %v, with network %v\n\n",
		rep.Downtime, rep.NetworkDowntime)

	// Drive the redis-benchmark timeline through the measured gap.
	redis := workload.Redis()
	inplaceQPS, _, err := workload.Timelines(redis, workload.Schedule{
		Kind:  workload.InPlaceTP,
		Total: 200 * time.Second, Step: time.Second,
		GapStart: 50 * time.Second,
		GapEnd:   50*time.Second + rep.NetworkDowntime,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("InPlaceTP (Redis QPS; gap = downtime + NIC reinit):")
	fmt.Println(metrics.RenderSeries(72, 10, inplaceQPS))

	migQPS, _, err := workload.Timelines(redis, workload.Schedule{
		Kind:  workload.MigrationTP,
		Total: 260 * time.Second, Step: time.Second,
		DegradeStart: 46 * time.Second,
		DegradeEnd:   124 * time.Second,
	}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MigrationTP (Redis QPS; degraded during pre-copy, no visible gap):")
	fmt.Println(metrics.RenderSeries(72, 10, migQPS))

	gap := workload.GapSeconds(inplaceQPS, time.Second)
	fmt.Printf("observed InPlaceTP interruption: %.0f s (paper: ~9 s)\n", gap)
	fmt.Printf("post-transplant throughput: ~%.0f QPS vs ~%.0f on Xen (+%.0f%%, paper: +37%%)\n",
		redis.QPSKVM, redis.QPSXen, (redis.QPSKVM/redis.QPSXen-1)*100)
}
