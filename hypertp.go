// Package hypertp is the public API of the HyperTP reproduction: a
// framework for mitigating hypervisor vulnerability windows by
// transplanting a running host from one hypervisor to another (EuroSys
// 2021, "Mitigating vulnerability windows with hypervisor transplant").
//
// The package wraps the internal engine in a small surface:
//
//	sim := hypertp.NewSimulation()
//	host, _ := sim.NewHost(hypertp.M1(), hypertp.KindXen)
//	vm, _ := host.CreateVM(hypertp.VMConfig{Name: "web", VCPUs: 1,
//	        MemBytes: 1 << 30, HugePages: true})
//	report, _ := host.TransplantWith(hypertp.KindKVM, hypertp.Default())
//	fmt.Println(report.Downtime) // ~1.7s on M1
//
// Everything runs on a deterministic virtual clock: a full transplant
// "takes" milliseconds of wall time while reporting the calibrated
// virtual durations of the paper's testbed.
package hypertp

import (
	"time"

	"hypertp/internal/checkpoint"
	"hypertp/internal/cluster"
	"hypertp/internal/core"
	"hypertp/internal/guest"
	"hypertp/internal/hv"
	"hypertp/internal/hw"
	"hypertp/internal/migration"
	"hypertp/internal/simnet"
	"hypertp/internal/simtime"
	"hypertp/internal/tpcache"
	"hypertp/internal/vulndb"
)

// Re-exported identity types.
type (
	// Kind identifies a hypervisor family.
	Kind = hv.Kind
	// VMConfig describes a VM to create.
	VMConfig = hv.Config
	// VM is a running virtual machine handle.
	VM = hv.VM
	// Options toggles the §4.2.5 transplant optimizations.
	//
	// Deprecated: the toggles live on Config now; use Default() /
	// NewConfig with Host.TransplantWith. Kept so existing callers
	// keep compiling.
	Options = core.Options
	// InPlaceReport is the phase breakdown of one InPlaceTP.
	InPlaceReport = core.InPlaceReport
	// MigrationReport describes one completed MigrationTP.
	MigrationReport = migration.Report
	// Profile describes a machine type.
	Profile = hw.Profile
	// VulnDatabase is the §2 vulnerability study database.
	VulnDatabase = vulndb.Database
	// Cluster is the §5.4 datacenter model.
	Cluster = cluster.Cluster
	// ClusterConfig configures a cluster build.
	ClusterConfig = cluster.Config
)

// Hypervisor kinds. KindNOVA is the microhypervisor pool member that
// gives the decision policy an escape when a flaw (VENOM's shared QEMU)
// hits Xen and KVM at once.
const (
	KindXen  = hv.KindXen
	KindKVM  = hv.KindKVM
	KindNOVA = hv.KindNOVA
)

// Machine profiles of the paper's testbed (Table 3).
var (
	M1          = hw.M1
	M2          = hw.M2
	ClusterNode = hw.ClusterNode
)

// DefaultOptions returns the paper's optimized transplant configuration.
//
// Deprecated: use Default(), which carries the same toggles plus the
// fault-injection and recovery controls.
func DefaultOptions() Options { return core.DefaultOptions() }

// LoadVulnDB loads the §2 vulnerability dataset.
func LoadVulnDB() *VulnDatabase { return vulndb.Load() }

// NewCluster builds a §5.4 cluster model.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// Simulation owns the virtual clock all hosts and links share, plus the
// simulation-wide transplant cache.
type Simulation struct {
	clock *simtime.Clock
	seed  uint64
	cache *tpcache.Cache
}

// NewSimulation creates an empty simulation at t=0.
func NewSimulation() *Simulation {
	return &Simulation{clock: simtime.NewClock(), seed: 1, cache: tpcache.New()}
}

// Now returns the current virtual time.
func (s *Simulation) Now() time.Duration { return s.clock.Now() }

// CacheStats is a census of the transplant cache: translation hits and
// misses, warm starts, poisoned entries, and PRAM snapshot replays.
type CacheStats = tpcache.Stats

// CacheStats reports the simulation-wide transplant cache counters.
// Transplants run with Config.TranslationCache (the default) feed them;
// a simulation that never caches reports zeros.
func (s *Simulation) CacheStats() CacheStats { return s.cache.Stats() }

// Link models a network connection between hosts.
type Link struct {
	link *simnet.Link
}

// NewLink creates a link with the given byte rate and latency.
func (s *Simulation) NewLink(name string, byteRate int64, latency time.Duration) *Link {
	return &Link{link: simnet.NewLink(s.clock, name, byteRate, latency)}
}

// Gbps converts gigabits/second to the byte rate NewLink expects.
func Gbps(g float64) int64 { return int64(g * 1e9 / 8) }

// Host is one simulated physical server running a HyperTP-compliant
// hypervisor.
type Host struct {
	sim    *Simulation
	engine *core.Engine
	hyp    hv.Hypervisor
}

// NewHost boots a machine of the given profile with the given hypervisor.
func (s *Simulation) NewHost(profile *Profile, kind Kind) (*Host, error) {
	machine := hw.NewMachine(s.clock, profile)
	engine := core.NewEngine(s.clock, machine)
	hyp, err := engine.BootHypervisor(kind)
	if err != nil {
		return nil, err
	}
	return &Host{sim: s, engine: engine, hyp: hyp}, nil
}

// Kind reports the hypervisor currently running on the host.
func (h *Host) Kind() Kind { return h.hyp.Kind() }

// HypervisorName reports the full hypervisor version label.
func (h *Host) HypervisorName() string { return h.hyp.Name() }

// CreateVM creates and starts a VM.
func (h *Host) CreateVM(cfg VMConfig) (*VM, error) { return h.hyp.CreateVM(cfg) }

// VMs lists the host's VMs.
func (h *Host) VMs() []*VM { return h.hyp.VMs() }

// Transplant performs InPlaceTP: every VM on the host is moved to a
// freshly micro-rebooted hypervisor of the target kind, in place.
//
// Deprecated: use TransplantWith, which takes the unified Config and
// adds fault injection, recovery, and transplant caching. Kept so
// existing callers keep compiling.
func (h *Host) Transplant(target Kind, opts Options) (*InPlaceReport, error) {
	newHyp, report, err := h.engine.InPlace(h.hyp, target, opts)
	if err != nil {
		return nil, err
	}
	h.hyp = newHyp
	return report, nil
}

// TransplantWith performs InPlaceTP under a unified Config: the
// config's fault plan is armed across the kexec/PRAM/UISR sites and
// post-handover crashes are recovered under its retry policy. On a
// rolled-back transplant both the report (Outcome: rolled-back) and an
// ErrAborted-classified error are returned, and the host keeps running
// its source hypervisor with every VM intact.
func (h *Host) TransplantWith(target Kind, cfg Config) (*InPlaceReport, error) {
	h.engine.Fault = cfg.faultPlan(h.sim.clock)
	h.engine.Retry = cfg.Retry
	defer func() { h.engine.Fault = nil }()
	opts := cfg.engineOptions()
	if cfg.TranslationCache {
		opts.Cache = h.sim.cache
	}
	h.engine.Machine.Mem.SetPageDedup(cfg.PageDedup)
	newHyp, report, err := h.engine.InPlace(h.hyp, target, opts)
	if newHyp != nil {
		h.hyp = newHyp
	}
	return report, err
}

// Checkpoint suspends a VM and serializes it — UISR platform state plus
// every touched guest page — into a durable, self-validating image (the
// §4.5.2 guest-state-saving operation). The VM is destroyed afterwards;
// restore it anywhere with RestoreCheckpoint.
func (h *Host) Checkpoint(vm *VM) ([]byte, error) {
	if !vm.Paused() {
		if err := h.hyp.Pause(vm.ID); err != nil {
			return nil, err
		}
	}
	img, err := checkpoint.Save(h.hyp, vm.ID)
	if err != nil {
		return nil, err
	}
	data, err := checkpoint.Serialize(img)
	if err != nil {
		return nil, err
	}
	if err := h.hyp.DestroyVM(vm.ID); err != nil {
		return nil, err
	}
	return data, nil
}

// RestoreCheckpoint instantiates a checkpoint image on this host (any
// pool hypervisor) and resumes it. Pass the guest stack captured before
// the checkpoint to keep end-to-end verification; nil attaches nothing.
func (h *Host) RestoreCheckpoint(data []byte, g *guest.Guest) (*VM, error) {
	img, err := checkpoint.Deserialize(data)
	if err != nil {
		return nil, err
	}
	vm, err := checkpoint.Restore(h.hyp, img)
	if err != nil {
		return nil, err
	}
	if g != nil {
		if err := h.hyp.AttachGuest(vm.ID, g); err != nil {
			return nil, err
		}
	}
	if err := h.hyp.Resume(vm.ID); err != nil {
		return nil, err
	}
	return vm, nil
}

// MigrateVM performs MigrationTP: one VM is live-migrated over the link
// to the destination host (which may run a different hypervisor). The
// call completes in virtual time before returning.
func (h *Host) MigrateVM(vm *VM, link *Link, dest *Host) (*MigrationReport, error) {
	return h.MigrateVMWith(vm, link, dest, Config{})
}

// MigrateVMWith performs MigrationTP under a unified Config: the
// config's fault plan is armed on the link (loss and sever sites) and
// severed attempts are retried under its retry policy, rolling back to
// the source between attempts. An exhausted retry budget aborts to the
// source (ErrAborted): the VM keeps running where it was.
func (h *Host) MigrateVMWith(vm *VM, link *Link, dest *Host, cfg Config) (*MigrationReport, error) {
	h.sim.seed++
	return core.MigrationTP(h.sim.clock, core.MigrationTPParams{
		Link:   link.link,
		Source: h.hyp,
		Dest:   migration.NewReceiver(h.sim.clock, dest.hyp, h.sim.seed),
		VMID:   vm.ID,
		Fault:  cfg.faultPlan(h.sim.clock),
		Retry:  cfg.Retry,
	})
}

// DefaultPool is the hypervisor repertoire the decision policy consults:
// the two mainstream stacks plus the microhypervisor escape hatch.
var DefaultPool = []string{"xen", "kvm", "nova"}

// SelectTransplantTarget consults the vulnerability database: given an
// active CVE on this host's hypervisor, it returns the transplant target
// the §1 policy picks from DefaultPool, or an error when no pool member
// is safe.
func (h *Host) SelectTransplantTarget(db *VulnDatabase, cveID string) (Kind, error) {
	target, err := db.SelectTarget(h.Kind().String(), []string{cveID}, DefaultPool)
	if err != nil {
		return 0, err
	}
	switch target {
	case "xen":
		return KindXen, nil
	case "nova":
		return KindNOVA, nil
	default:
		return KindKVM, nil
	}
}
