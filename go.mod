module hypertp

go 1.22
