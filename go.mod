module hypertp

go 1.23
